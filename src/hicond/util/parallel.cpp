#include "hicond/util/parallel.hpp"

#include <omp.h>

namespace hicond {

int num_threads() noexcept { return omp_get_max_threads(); }

eidx exclusive_scan_inplace(std::vector<eidx>& values) {
  const std::size_t n = values.size();
  const int threads = num_threads();
  if (n == 0) return 0;
  if (threads <= 1 || n < 4096) {
    eidx run = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const eidx v = values[i];
      values[i] = run;
      run += v;
    }
    return run;
  }
  // Two-pass blocked scan: per-block sums, then each thread derives its own
  // starting offset by summing the preceding block sums (O(p) reads per
  // thread beats a serialized `single` section, and every access is ordered
  // by the annotated barrier).
  std::vector<eidx> block_sum(static_cast<std::size_t>(threads), 0);
  parallel_region([&] {
    const int team = omp_get_num_threads();
    const int tid = omp_get_thread_num();
    const std::size_t lo = n * static_cast<std::size_t>(tid) /
                           static_cast<std::size_t>(team);
    const std::size_t hi = n * (static_cast<std::size_t>(tid) + 1) /
                           static_cast<std::size_t>(team);
    eidx local = 0;
    for (std::size_t i = lo; i < hi; ++i) local += values[i];
    block_sum[static_cast<std::size_t>(tid)] = local;
    team_barrier();
    eidx run = 0;
    for (int t = 0; t < tid; ++t) {
      run += block_sum[static_cast<std::size_t>(t)];
    }
    for (std::size_t i = lo; i < hi; ++i) {
      const eidx v = values[i];
      values[i] = run;
      run += v;
    }
  });
  eidx total = 0;
  for (const eidx s : block_sum) total += s;
  return total;
}

}  // namespace hicond
