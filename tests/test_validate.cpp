// Corrupt-structure fixtures for the invariant-validation layer: each broken
// input must be rejected with an invalid_argument_error whose message names
// the violated invariant.

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "hicond/graph/generators.hpp"
#include "hicond/graph/graph.hpp"
#include "hicond/la/csr.hpp"
#include "hicond/partition/decomposition.hpp"
#include "hicond/tree/rooted_tree.hpp"

namespace hicond {
namespace {

/// Expects `body` to throw invalid_argument_error whose what() mentions
/// `needle` (the name of the violated invariant).
template <typename Body>
void expect_rejected(Body&& body, const std::string& needle) {
  try {
    body();
    FAIL() << "expected invalid_argument_error mentioning \"" << needle
           << "\"";
  } catch (const invalid_argument_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message was: " << e.what();
  }
}

// --- Graph::from_csr ------------------------------------------------------

// Well-formed CSR of the triangle 0-1-2 with weights w(0,1)=1, w(1,2)=2,
// w(0,2)=3; rows sorted, both arc directions present.
struct TriangleCsr {
  std::vector<eidx> offsets{0, 2, 4, 6};
  std::vector<vidx> targets{1, 2, 0, 2, 0, 1};
  std::vector<double> weights{1.0, 3.0, 1.0, 2.0, 3.0, 2.0};
};

TEST(GraphFromCsr, AcceptsWellFormedInput) {
  TriangleCsr t;
  const Graph g = Graph::from_csr(3, t.offsets, t.targets, t.weights);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(g.vol(0), 4.0);
  g.validate();  // idempotent on a valid graph
}

TEST(GraphFromCsr, RejectsUnsortedRow) {
  TriangleCsr t;
  std::swap(t.targets[0], t.targets[1]);  // row 0 becomes {2, 1}
  std::swap(t.weights[0], t.weights[1]);
  expect_rejected(
      [&] { std::ignore = Graph::from_csr(3, t.offsets, t.targets, t.weights); },
      "unsorted or duplicate arcs");
}

TEST(GraphFromCsr, RejectsDuplicateArc) {
  TriangleCsr t;
  t.targets[1] = 1;  // row 0 becomes {1, 1}
  expect_rejected(
      [&] { std::ignore = Graph::from_csr(3, t.offsets, t.targets, t.weights); },
      "unsorted or duplicate arcs");
}

TEST(GraphFromCsr, RejectsAsymmetricWeights) {
  TriangleCsr t;
  t.weights[2] = 7.0;  // arc 1->0 no longer matches arc 0->1
  expect_rejected(
      [&] { std::ignore = Graph::from_csr(3, t.offsets, t.targets, t.weights); },
      "mirror arc weight differs");
}

TEST(GraphFromCsr, RejectsMissingMirrorArc) {
  // Arc 0->1 present but 1->0 replaced by 1->2 (duplicate weight kept
  // consistent so only the symmetry check can fire).
  const std::vector<eidx> offsets{0, 1, 2, 3};
  const std::vector<vidx> targets{1, 2, 1};
  const std::vector<double> weights{1.0, 2.0, 2.0};
  expect_rejected([&] { std::ignore = Graph::from_csr(3, offsets, targets, weights); },
                  "mirror arc missing");
}

TEST(GraphFromCsr, RejectsRaggedOffsets) {
  TriangleCsr t;
  t.offsets[1] = 3;
  t.offsets[2] = 2;  // decreasing: ragged
  expect_rejected(
      [&] { std::ignore = Graph::from_csr(3, t.offsets, t.targets, t.weights); },
      "ragged offsets");
}

TEST(GraphFromCsr, RejectsOffsetsNotCoveringArcs) {
  TriangleCsr t;
  t.offsets.back() = 5;  // does not reach the arc count
  expect_rejected(
      [&] { std::ignore = Graph::from_csr(3, t.offsets, t.targets, t.weights); },
      "ragged offsets");
}

TEST(GraphFromCsr, RejectsNonPositiveWeight) {
  TriangleCsr t;
  t.weights[0] = 0.0;
  t.weights[2] = 0.0;
  expect_rejected(
      [&] { std::ignore = Graph::from_csr(3, t.offsets, t.targets, t.weights); },
      "positive and finite");
}

TEST(GraphFromCsr, RejectsSelfLoop) {
  const std::vector<eidx> offsets{0, 1, 2};
  const std::vector<vidx> targets{0, 1};  // 0->0 self-loop
  const std::vector<double> weights{1.0, 1.0};
  expect_rejected([&] { std::ignore = Graph::from_csr(2, offsets, targets, weights); },
                  "self-loops");
}

TEST(GraphFromCsr, RejectsTargetOutOfRange) {
  TriangleCsr t;
  t.targets[1] = 5;
  expect_rejected(
      [&] { std::ignore = Graph::from_csr(3, t.offsets, t.targets, t.weights); },
      "target out of range");
}

// --- CsrMatrix::validate --------------------------------------------------

TEST(CsrValidate, RejectsRaggedOffsets) {
  CsrMatrix m;
  m.rows = 3;
  m.cols = 2;
  m.offsets = {0, 2, 1, 2};  // interior dip: ragged
  m.col_idx = {0, 1};
  m.values = {1.0, 1.0};
  expect_rejected([&] { m.validate(); }, "ragged offsets");
}

TEST(CsrValidate, RejectsUnsortedColumns) {
  CsrMatrix m;
  m.rows = 1;
  m.cols = 3;
  m.offsets = {0, 2};
  m.col_idx = {2, 0};
  m.values = {1.0, 1.0};
  expect_rejected([&] { m.validate(); }, "columns not strictly increasing");
}

// --- Decomposition::validate ----------------------------------------------

TEST(DecompositionValidate, AcceptsExactCover) {
  const Graph g = gen::path(4);
  Decomposition d;
  d.assignment = {0, 0, 1, 1};
  d.num_clusters = 2;
  d.validate(g);
}

TEST(DecompositionValidate, RejectsOrphanVertexPartition) {
  const Graph g = gen::path(4);
  Decomposition d;
  d.assignment = {0, 0, 1};  // vertex 3 orphaned
  d.num_clusters = 2;
  expect_rejected([&] { d.validate(g); }, "orphan or surplus vertices");
}

TEST(DecompositionValidate, RejectsUnassignedVertex) {
  const Graph g = gen::path(3);
  Decomposition d;
  d.assignment = {0, -1, 1};
  d.num_clusters = 2;
  expect_rejected([&] { d.validate(g); }, "cluster id out of range");
}

TEST(DecompositionValidate, RejectsEmptyClusterId) {
  const Graph g = gen::path(3);
  Decomposition d;
  d.assignment = {0, 0, 2};  // id 1 unused
  d.num_clusters = 3;
  expect_rejected([&] { d.validate(g); }, "empty cluster id");
}

TEST(DecompositionValidate, QualityAcceptsSingletonClusters) {
  // Each cluster {v} has closure conductance 1 by convention, and
  // num_clusters = n satisfies rho = 1.
  const Graph g = gen::path(4);
  Decomposition d;
  d.assignment = {0, 1, 2, 3};
  d.num_clusters = 4;
  d.validate_quality(g, /*phi=*/0.5, /*rho=*/1.0);
}

TEST(DecompositionValidate, QualityRejectsTooManyClusters) {
  const Graph g = gen::path(4);
  Decomposition d;
  d.assignment = {0, 1, 2, 3};
  d.num_clusters = 4;
  expect_rejected([&] { d.validate_quality(g, 0.01, /*rho=*/2.0); },
                  "cluster count exceeds n / rho");
}

TEST(DecompositionValidate, QualityRejectsLowConductanceCluster) {
  // Two 4-cliques joined by one light edge form a single low-conductance
  // cluster; demand phi close to 1.
  std::vector<WeightedEdge> edges;
  for (vidx u = 0; u < 4; ++u) {
    for (vidx v = u + 1; v < 4; ++v) {
      edges.push_back({u, v, 1.0});
      edges.push_back({u + 4, v + 4, 1.0});
    }
  }
  edges.push_back({0, 4, 0.01});
  const Graph g(8, edges);
  Decomposition d;
  d.assignment.assign(8, 0);
  d.num_clusters = 1;
  expect_rejected([&] { d.validate_quality(g, /*phi=*/0.9, /*rho=*/1.0); },
                  "closure conductance below phi");
}

// --- RootedForest::from_parents -------------------------------------------

TEST(RootedForestFromParents, AcceptsValidForest) {
  const std::vector<vidx> parents{-1, 0, 0, 1, -1};
  const RootedForest f = RootedForest::from_parents(parents);
  EXPECT_EQ(f.roots().size(), 2u);
  f.validate();
}

TEST(RootedForestFromParents, RejectsCyclicParentArray) {
  // 1 -> 2 -> 3 -> 1 is a cycle unreachable from the root 0.
  const std::vector<vidx> parents{-1, 2, 3, 1};
  expect_rejected([&] { std::ignore = RootedForest::from_parents(parents); },
                  "cyclic parent array");
}

TEST(RootedForestFromParents, RejectsSelfParent) {
  const std::vector<vidx> parents{-1, 1};
  expect_rejected([&] { std::ignore = RootedForest::from_parents(parents); },
                  "its own parent");
}

TEST(RootedForestFromParents, RejectsAllCyclicNoRoot) {
  const std::vector<vidx> parents{1, 0};
  expect_rejected([&] { std::ignore = RootedForest::from_parents(parents); },
                  "cyclic parent array");
}

TEST(RootedForestFromParents, RejectsParentOutOfRange) {
  const std::vector<vidx> parents{-1, 7};
  expect_rejected([&] { std::ignore = RootedForest::from_parents(parents); },
                  "parent index out of range");
}

TEST(RootedForestFromParents, RejectsNonPositiveEdgeWeight) {
  const std::vector<vidx> parents{-1, 0};
  const std::vector<double> weights{0.0, -1.0};
  expect_rejected([&] { std::ignore = RootedForest::from_parents(parents, weights); },
                  "positive and finite");
}

// --- Validation levels ----------------------------------------------------

TEST(ValidationLevels, LevelConstantsAreOrdered) {
  EXPECT_LT(kValidateOff, kValidateCheap);
  EXPECT_LT(kValidateCheap, kValidateExpensive);
  // The build must compile with some recognised level.
  EXPECT_GE(validate_level(), kValidateOff);
  EXPECT_LE(validate_level(), kValidateExpensive);
}

TEST(ValidationLevels, CheapValidateMacroFiresAtCheapLevel) {
  if (validate_level() >= kValidateCheap) {
    EXPECT_THROW(HICOND_VALIDATE(cheap, false, "cheap probe"),
                 invalid_argument_error);
  } else {
    EXPECT_NO_THROW(HICOND_VALIDATE(cheap, false, "cheap probe"));
  }
}

TEST(ValidationLevels, ExpensiveValidateMacroRespectsLevel) {
  if (validate_level() >= kValidateExpensive) {
    EXPECT_THROW(HICOND_VALIDATE(expensive, false, "expensive probe"),
                 invalid_argument_error);
  } else {
    EXPECT_NO_THROW(HICOND_VALIDATE(expensive, false, "expensive probe"));
  }
}

TEST(ValidationLevels, CheckIsAlwaysOn) {
  EXPECT_THROW(HICOND_CHECK(false, "always-on probe"),
               invalid_argument_error);
}

}  // namespace
}  // namespace hicond
