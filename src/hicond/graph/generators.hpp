// Synthetic graph families used throughout the tests, examples and the
// benchmark harnesses that regenerate the paper's experiments.
//
// The paper's own experiments run on weighted regular 2D/3D grids and on
// graphs derived from 3D optical coherence tomography (OCT) scans with large
// global and local (noise-driven) weight variation. The OCT data is
// proprietary, so `oct_volume` synthesizes volumes with those documented
// characteristics: a smooth multiplicative field spanning several orders of
// magnitude overlaid with per-edge speckle noise.
#pragma once

#include <cstdint>

#include "hicond/graph/graph.hpp"
#include "hicond/util/rng.hpp"

namespace hicond::gen {

/// How edge weights are drawn.
struct WeightSpec {
  enum class Kind {
    unit,       ///< all weights 1
    uniform,    ///< U[lo, hi)
    lognormal,  ///< exp(N(mu, sigma^2))
  };
  Kind kind = Kind::unit;
  double lo = 1.0;      ///< uniform lower bound
  double hi = 2.0;      ///< uniform upper bound
  double mu = 0.0;      ///< lognormal location
  double sigma = 1.0;   ///< lognormal scale

  static WeightSpec unit() { return {}; }
  static WeightSpec uniform(double lo, double hi) {
    return {Kind::uniform, lo, hi, 0.0, 1.0};
  }
  static WeightSpec lognormal(double mu, double sigma) {
    return {Kind::lognormal, 1.0, 2.0, mu, sigma};
  }
};

/// Draw one weight according to `spec`.
[[nodiscard]] double draw_weight(const WeightSpec& spec, Rng& rng);

/// Simple path v0 - v1 - ... - v_{n-1}.
[[nodiscard]] Graph path(vidx n, const WeightSpec& w = {},
                         std::uint64_t seed = 1);

/// Cycle on n >= 3 vertices.
[[nodiscard]] Graph cycle(vidx n, const WeightSpec& w = {},
                          std::uint64_t seed = 1);

/// Star with center 0 and n-1 leaves.
[[nodiscard]] Graph star(vidx n, const WeightSpec& w = {},
                         std::uint64_t seed = 1);

/// Complete graph K_n.
[[nodiscard]] Graph complete(vidx n, const WeightSpec& w = {},
                             std::uint64_t seed = 1);

/// Spider: center 0 with `legs` paths of `leg_len` vertices each.
[[nodiscard]] Graph spider(vidx legs, vidx leg_len, const WeightSpec& w = {},
                           std::uint64_t seed = 1);

/// Caterpillar: a spine path of `spine` vertices, each with `legs` leaves.
[[nodiscard]] Graph caterpillar(vidx spine, vidx legs,
                                const WeightSpec& w = {},
                                std::uint64_t seed = 1);

/// Complete binary tree with `levels` levels (2^levels - 1 vertices).
[[nodiscard]] Graph binary_tree(int levels, const WeightSpec& w = {},
                                std::uint64_t seed = 1);

/// Uniform-attachment random tree: vertex i attaches to a uniformly random
/// earlier vertex.
[[nodiscard]] Graph random_tree(vidx n, const WeightSpec& w = {},
                                std::uint64_t seed = 1);

/// Random tree drawn uniformly from all labelled trees (Pruefer decoding).
[[nodiscard]] Graph random_pruefer_tree(vidx n, const WeightSpec& w = {},
                                        std::uint64_t seed = 1);

/// 4-connected nx * ny grid. Vertex (x, y) has index x + nx * y.
[[nodiscard]] Graph grid2d(vidx nx, vidx ny, const WeightSpec& w = {},
                           std::uint64_t seed = 1);

/// 6-connected nx * ny * nz grid. Vertex (x, y, z) = x + nx * (y + ny * z).
[[nodiscard]] Graph grid3d(vidx nx, vidx ny, vidx nz, const WeightSpec& w = {},
                           std::uint64_t seed = 1);

/// 2D torus (grid with wraparound): every vertex has degree exactly 4.
[[nodiscard]] Graph torus2d(vidx nx, vidx ny, const WeightSpec& w = {},
                            std::uint64_t seed = 1);

/// Random maximal planar graph (triangulation): start from a triangle and
/// repeatedly insert a vertex inside a uniformly random face. n >= 3.
[[nodiscard]] Graph random_planar_triangulation(vidx n,
                                                const WeightSpec& w = {},
                                                std::uint64_t seed = 1);

/// Random d-regular multigraph via the configuration model with rejection of
/// self-loops / duplicates; falls back to leaving a few vertices at degree
/// d-1 when pairing stalls. n * d must be even.
[[nodiscard]] Graph random_regular(vidx n, vidx d, const WeightSpec& w = {},
                                   std::uint64_t seed = 1);

/// Parameters of the synthetic OCT-like volume (see file comment).
struct OctParams {
  double field_orders = 3.0;   ///< orders of magnitude of the smooth field
  double speckle_sigma = 0.5;  ///< lognormal sigma of per-edge noise
  int field_waves = 3;         ///< number of smooth cosine modes
};

/// Weighted 3D grid emulating a Laplacian derived from a noisy OCT scan:
/// edge weight = smooth_field(midpoint) * speckle, where smooth_field spans
/// `field_orders` orders of magnitude.
[[nodiscard]] Graph oct_volume(vidx nx, vidx ny, vidx nz,
                               const OctParams& params = {},
                               std::uint64_t seed = 1);

}  // namespace hicond::gen
