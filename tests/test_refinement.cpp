#include "hicond/partition/refinement.hpp"

#include <gtest/gtest.h>

#include "hicond/graph/builder.hpp"
#include "hicond/graph/connectivity.hpp"
#include "hicond/graph/generators.hpp"
#include "hicond/graph/quotient.hpp"
#include "hicond/partition/fixed_degree.hpp"

namespace hicond {
namespace {

TEST(Refinement, MovesMisassignedVertexHome) {
  // Two cliques, one vertex planted in the wrong cluster.
  GraphBuilder b(8);
  for (vidx c = 0; c < 2; ++c) {
    for (vidx i = 0; i < 4; ++i) {
      for (vidx j = i + 1; j < 4; ++j) b.add_edge(c * 4 + i, c * 4 + j, 1.0);
    }
  }
  b.add_edge(0, 4, 0.1);
  const Graph g = b.build();
  Decomposition bad;
  bad.num_clusters = 2;
  bad.assignment = {0, 0, 0, 1, 1, 1, 1, 1};  // vertex 3 misplaced
  const RefinementResult r = refine_decomposition(g, bad, {.gamma_floor = 0.5});
  validate_decomposition(g, r.decomposition);
  EXPECT_GE(r.moves, 1);
  // Vertex 3 must rejoin its clique-mates.
  EXPECT_EQ(r.decomposition.assignment[3], r.decomposition.assignment[0]);
  EXPECT_NE(r.decomposition.assignment[3], r.decomposition.assignment[4]);
}

TEST(Refinement, FixedPointWhenAlreadyGood) {
  GraphBuilder b(12);
  for (vidx c = 0; c < 2; ++c) {
    for (vidx i = 0; i < 6; ++i) {
      for (vidx j = i + 1; j < 6; ++j) b.add_edge(c * 6 + i, c * 6 + j, 1.0);
    }
  }
  b.add_edge(0, 6, 0.01);
  const Graph g = b.build();
  Decomposition good;
  good.num_clusters = 2;
  good.assignment = {0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1};
  const RefinementResult r = refine_decomposition(g, good);
  EXPECT_EQ(r.moves, 0);
  EXPECT_EQ(r.decomposition.assignment[0], r.decomposition.assignment[5]);
  EXPECT_EQ(r.decomposition.num_clusters, 2);
}

TEST(Refinement, NeverDecreasesMinGamma) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Graph g = gen::oct_volume(6, 6, 6, {}, seed);
    const auto fd = fixed_degree_decomposition(g, {.seed = seed});
    const auto before = evaluate_decomposition(g, fd.decomposition);
    const RefinementResult r =
        refine_decomposition(g, fd.decomposition, {.gamma_floor = 0.25});
    const auto after = evaluate_decomposition(g, r.decomposition);
    EXPECT_GE(after.min_gamma + 1e-12, std::min(before.min_gamma, 0.0))
        << "seed " << seed;
    // The headline property: total internal weight cannot drop.
    EXPECT_LE(cut_weight_fraction(g, r.decomposition),
              cut_weight_fraction(g, fd.decomposition) + 1e-12)
        << "seed " << seed;
    EXPECT_EQ(after.num_disconnected_clusters, 0);
  }
}

TEST(Refinement, OutputClustersAlwaysConnected) {
  // Force a split: a path clustered so refinement removes the middle.
  std::vector<WeightedEdge> edges{{0, 1, 1.0}, {1, 2, 0.01}, {2, 3, 0.01},
                                  {3, 4, 1.0}};
  const Graph g(5, edges);
  Decomposition d;
  d.num_clusters = 2;
  d.assignment = {0, 0, 1, 0, 0};  // cluster 0 disconnected after any move
  const RefinementResult r = refine_decomposition(g, d, {.gamma_floor = 0.9});
  validate_decomposition(g, r.decomposition);
  const auto stats = evaluate_decomposition(g, r.decomposition);
  EXPECT_EQ(stats.num_disconnected_clusters, 0);
}

TEST(Refinement, RespectsRoundCap) {
  const Graph g = gen::grid2d(8, 8, gen::WeightSpec::uniform(1.0, 2.0), 3);
  const auto fd = fixed_degree_decomposition(g);
  const RefinementResult r = refine_decomposition(
      g, fd.decomposition, {.gamma_floor = 1.0, .max_rounds = 2});
  EXPECT_LE(r.rounds, 2);
}

TEST(Refinement, RejectsBadOptions) {
  const Graph g = gen::path(4);
  Decomposition d;
  d.num_clusters = 1;
  d.assignment = {0, 0, 0, 0};
  EXPECT_THROW((void)refine_decomposition(g, d, {.gamma_floor = 1.5}),
               invalid_argument_error);
  EXPECT_THROW((void)refine_decomposition(g, d, {.max_rounds = -1}),
               invalid_argument_error);
}

}  // namespace
}  // namespace hicond
