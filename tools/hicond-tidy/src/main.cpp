// hicond-tidy: Clang AST analyzer for the hicond contracts.
//
//   hicond-tidy -p build/ src/hicond/**/*.cpp      # compilation database
//   hicond-tidy --fixture-mode f.cpp -- -std=c++20 # self-test fixtures
//
// Prints one line per finding, `path:line: [check] message`, and exits 1
// when anything was found, 2 on tool/parse failure, 0 when clean. The
// check catalog and the suppression syntax are documented in
// docs/STATIC_ANALYSIS.md.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <system_error>
#include <vector>

#include "clang/AST/ASTConsumer.h"
#include "clang/AST/ASTContext.h"
#include "clang/Frontend/CompilerInstance.h"
#include "clang/Frontend/FrontendAction.h"
#include "clang/Lex/Preprocessor.h"
#include "clang/Tooling/ArgumentsAdjusters.h"
#include "clang/Tooling/CommonOptionsParser.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/ADT/SmallString.h"
#include "llvm/Support/CommandLine.h"
#include "llvm/Support/FileSystem.h"
#include "llvm/Support/Path.h"
#include "llvm/Support/raw_ostream.h"

#include "tidy_checks.hpp"
#include "tidy_context.hpp"

namespace {

llvm::cl::OptionCategory gCategory("hicond-tidy options");

llvm::cl::opt<bool> gFixtureMode(
    "fixture-mode",
    llvm::cl::desc("Run every check on the main file only, ignoring the "
                   "repository path policy (used by the fixture tests)"),
    llvm::cl::cat(gCategory));

llvm::cl::opt<std::string> gRepoRoot(
    "repo-root",
    llvm::cl::desc("Repository root the path policy is relative to "
                   "(default: current directory)"),
    llvm::cl::cat(gCategory));

llvm::cl::opt<std::string> gSarif(
    "sarif",
    llvm::cl::desc("Also write the findings as a SARIF 2.1.0 log to this "
                   "path (for code-scanning upload from CI)"),
    llvm::cl::cat(gCategory));

void appendJsonEscaped(std::string& out, llvm::StringRef s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Minimal SARIF 2.1.0 document: one run, one rule per distinct check, one
/// result per diagnostic. Enough for GitHub code scanning and `sarif`
/// viewers without pulling a JSON library into the tool.
std::string renderSarif(const std::vector<hicond_tidy::Diagnostic>& diags) {
  std::string out;
  out +=
      "{\"version\":\"2.1.0\",\"$schema\":"
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\"runs\":[{"
      "\"tool\":{\"driver\":{\"name\":\"hicond-tidy\",\"rules\":[";
  std::vector<std::string> rules;
  for (const hicond_tidy::Diagnostic& d : diags) {
    if (std::find(rules.begin(), rules.end(), d.check) == rules.end()) {
      rules.push_back(d.check);
    }
  }
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (i > 0) out += ',';
    out += "{\"id\":\"";
    appendJsonEscaped(out, rules[i]);
    out += "\"}";
  }
  out += "]}},\"results\":[";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const hicond_tidy::Diagnostic& d = diags[i];
    if (i > 0) out += ',';
    out += "{\"ruleId\":\"";
    appendJsonEscaped(out, d.check);
    out += "\",\"level\":\"error\",\"message\":{\"text\":\"";
    appendJsonEscaped(out, d.message);
    out += "\"},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":"
           "{\"uri\":\"";
    appendJsonEscaped(out, d.file);
    out += "\"},\"region\":{\"startLine\":" + std::to_string(d.line) +
           "}}}]}";
  }
  out += "]}]}\n";
  return out;
}

class TidyConsumer : public clang::ASTConsumer {
 public:
  TidyConsumer(hicond_tidy::TidyContext& ctx,
               std::shared_ptr<hicond_tidy::MacroUseLog> log)
      : ctx_(ctx), log_(std::move(log)) {}

  void HandleTranslationUnit(clang::ASTContext& ast) override {
    hicond_tidy::runChecks(ctx_, ast, *log_);
  }

 private:
  hicond_tidy::TidyContext& ctx_;
  std::shared_ptr<hicond_tidy::MacroUseLog> log_;
};

class TidyAction : public clang::ASTFrontendAction {
 public:
  explicit TidyAction(hicond_tidy::TidyContext& ctx) : ctx_(ctx) {}

 protected:
  std::unique_ptr<clang::ASTConsumer> CreateASTConsumer(
      clang::CompilerInstance& ci, llvm::StringRef /*in_file*/) override {
    auto log = std::make_shared<hicond_tidy::MacroUseLog>();
    ci.getPreprocessor().addPPCallbacks(
        hicond_tidy::makePPCallbacks(ci.getSourceManager(), log));
    return std::make_unique<TidyConsumer>(ctx_, std::move(log));
  }

 private:
  hicond_tidy::TidyContext& ctx_;
};

class TidyActionFactory : public clang::tooling::FrontendActionFactory {
 public:
  explicit TidyActionFactory(hicond_tidy::TidyContext& ctx) : ctx_(ctx) {}
  std::unique_ptr<clang::FrontendAction> create() override {
    return std::make_unique<TidyAction>(ctx_);
  }

 private:
  hicond_tidy::TidyContext& ctx_;
};

}  // namespace

int main(int argc, const char** argv) {
  auto expected_parser = clang::tooling::CommonOptionsParser::create(
      argc, argv, gCategory);
  if (!expected_parser) {
    llvm::errs() << llvm::toString(expected_parser.takeError()) << "\n";
    return 2;
  }
  clang::tooling::CommonOptionsParser& parser = *expected_parser;

  hicond_tidy::TidyOptions opts;
  opts.fixture_mode = gFixtureMode;
  if (!gRepoRoot.empty()) {
    opts.repo_root = gRepoRoot;
  } else {
    llvm::SmallString<256> cwd;
    llvm::sys::fs::current_path(cwd);
    opts.repo_root = std::string(cwd.str());
  }
  hicond_tidy::TidyContext ctx(std::move(opts));

  clang::tooling::ClangTool tool(parser.getCompilations(),
                                 parser.getSourcePathList());
  // The analyzed code's own warnings are the build's business, not ours.
  tool.appendArgumentsAdjuster(clang::tooling::getInsertArgumentAdjuster(
      "-Wno-everything", clang::tooling::ArgumentInsertPosition::END));
#ifdef HICOND_TIDY_RESOURCE_DIR
  // Builtin headers of the clang we were built against, so the tool works
  // in a compile_commands.json produced by any compiler.
  tool.appendArgumentsAdjuster(clang::tooling::getInsertArgumentAdjuster(
      {"-resource-dir", HICOND_TIDY_RESOURCE_DIR},
      clang::tooling::ArgumentInsertPosition::END));
#endif

  TidyActionFactory factory(ctx);
  const int tool_status = tool.run(&factory);

  const std::size_t findings = ctx.flush(llvm::outs());
  if (!gSarif.empty()) {
    std::error_code ec;
    llvm::raw_fd_ostream sarif(gSarif, ec);
    if (ec) {
      llvm::errs() << "hicond-tidy: cannot write SARIF log to " << gSarif
                   << ": " << ec.message() << "\n";
      return 2;
    }
    sarif << renderSarif(ctx.diagnostics());
  }
  if (tool_status != 0) {
    llvm::errs() << "hicond-tidy: one or more translation units failed to "
                    "parse; findings above may be incomplete\n";
    return 2;
  }
  return findings == 0 ? 0 : 1;
}
