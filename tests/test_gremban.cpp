#include "hicond/precond/gremban.hpp"

#include <gtest/gtest.h>

#include "hicond/graph/generators.hpp"
#include "hicond/la/vector_ops.hpp"
#include "hicond/partition/fixed_degree.hpp"
#include "hicond/precond/schur.hpp"
#include "hicond/precond/steiner.hpp"
#include "hicond/precond/support.hpp"
#include "hicond/util/rng.hpp"

namespace hicond {
namespace {

TEST(Gremban, MatchesClosedFormSteinerApply) {
  // The explicit extended solve and the leaf-elimination closed form are
  // the same operator.
  const Graph a = gen::grid2d(6, 5, gen::WeightSpec::uniform(1.0, 3.0), 3);
  const auto fd = fixed_degree_decomposition(a, {.max_cluster_size = 4});
  const SteinerPreconditioner sp =
      SteinerPreconditioner::build(a, fd.decomposition);
  const GrembanSolver gremban(sp.steiner_graph(), a.num_vertices());
  EXPECT_EQ(gremban.num_steiner(), sp.num_steiner_vertices());
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> r(30);
    for (auto& v : r) v = rng.uniform(-1.0, 1.0);
    la::remove_mean(r);
    std::vector<double> z1(30);
    std::vector<double> z2(30);
    sp.apply(r, z1);
    gremban.apply(r, z2);
    la::remove_mean(z1);  // compare in the mean-free gauge
    la::remove_mean(z2);
    EXPECT_LT(la::max_abs_diff(z1, z2), 1e-8) << "trial " << trial;
  }
}

TEST(Gremban, WorksWithMatchedStar) {
  // Lemma 3.4's star is also a Steiner graph; the Gremban solve must invert
  // its Schur complement: B = star complement, check B * apply(r) == r.
  const Graph a = gen::grid2d(4, 4, gen::WeightSpec::uniform(1.0, 2.0), 7);
  const Graph star = matched_star(a);
  const GrembanSolver gremban(star, a.num_vertices());
  Rng rng(9);
  std::vector<double> r(16);
  for (auto& v : r) v = rng.uniform(-1.0, 1.0);
  la::remove_mean(r);
  std::vector<double> z(16);
  gremban.apply(r, z);
  // Verify via the extended system: pad z with the root potential that
  // balances it, then S [z; y] should equal [r; 0] for the right y.
  // Equivalent check: the star Schur complement applied densely.
  const Graph schur_full = star_schur_complement(star, 16);
  std::vector<vidx> keep(16);
  for (vidx v = 0; v < 16; ++v) keep[static_cast<std::size_t>(v)] = v;
  const Graph b = induced_subgraph(schur_full, keep);
  std::vector<double> back(16);
  b.laplacian_apply(z, back);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_NEAR(back[i], r[i], 1e-8);
}

TEST(Gremban, OperatorIsSymmetric) {
  const Graph a = gen::random_planar_triangulation(
      20, gen::WeightSpec::uniform(1.0, 2.0), 11);
  const auto fd = fixed_degree_decomposition(a, {.max_cluster_size = 3});
  const SteinerPreconditioner sp =
      SteinerPreconditioner::build(a, fd.decomposition);
  const GrembanSolver gremban(sp.steiner_graph(), 20);
  Rng rng(13);
  std::vector<double> r1(20);
  std::vector<double> r2(20);
  for (auto& v : r1) v = rng.uniform(-1.0, 1.0);
  for (auto& v : r2) v = rng.uniform(-1.0, 1.0);
  std::vector<double> z1(20);
  std::vector<double> z2(20);
  gremban.apply(r1, z1);
  gremban.apply(r2, z2);
  EXPECT_NEAR(la::dot(r2, z1), la::dot(r1, z2), 1e-9);
}

TEST(Gremban, PreconditionsPcg) {
  const Graph a = gen::oct_volume(6, 6, 6, {.field_orders = 2.0}, 13);
  const auto fd = fixed_degree_decomposition(a, {.max_cluster_size = 4});
  const SteinerPreconditioner sp =
      SteinerPreconditioner::build(a, fd.decomposition);
  const GrembanSolver gremban(sp.steiner_graph(), a.num_vertices());
  auto op_a = [&a](std::span<const double> x, std::span<double> y) {
    a.laplacian_apply(x, y);
  };
  Rng rng(15);
  std::vector<double> b(216);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  la::remove_mean(b);
  std::vector<double> x(216, 0.0);
  const auto stats = pcg_solve(
      op_a, gremban.as_operator(), b, x,
      {.max_iterations = 500, .rel_tolerance = 1e-8, .project_constant = true});
  EXPECT_TRUE(stats.converged);
  EXPECT_LT(stats.iterations, 60);
}

TEST(Gremban, RejectsBadInput) {
  const Graph disconnected(4);  // no edges
  EXPECT_THROW(GrembanSolver(disconnected, 2), invalid_argument_error);
  const Graph a = gen::path(4);
  EXPECT_THROW(GrembanSolver(a, 9), invalid_argument_error);
}

}  // namespace
}  // namespace hicond
