#include "hicond/precond/schur.hpp"

#include <gtest/gtest.h>

#include "hicond/graph/generators.hpp"
#include "hicond/la/dense_eigen.hpp"

namespace hicond {
namespace {

TEST(StarSchur, ClosedFormMatchesDefinition55) {
  // Star with weights d_i: S_ij = d_i d_j / sum d.
  std::vector<WeightedEdge> edges{{3, 0, 1.0}, {3, 1, 2.0}, {3, 2, 3.0}};
  const Graph star(4, edges);
  const Graph s = star_schur_complement(star, 3);
  const double total = 6.0;
  EXPECT_DOUBLE_EQ(s.edge_weight(0, 1), 1.0 * 2.0 / total);
  EXPECT_DOUBLE_EQ(s.edge_weight(0, 2), 1.0 * 3.0 / total);
  EXPECT_DOUBLE_EQ(s.edge_weight(1, 2), 2.0 * 3.0 / total);
  EXPECT_EQ(s.degree(3), 0);
}

TEST(StarSchur, AgreesWithDenseElimination) {
  const Graph star = gen::star(7, gen::WeightSpec::uniform(0.5, 4.0), 3);
  const Graph s = star_schur_complement(star, 0);
  std::vector<vidx> eliminate{0};
  std::vector<vidx> kept;
  const DenseMatrix dense = schur_complement_dense(star, eliminate, &kept);
  for (std::size_t i = 0; i < kept.size(); ++i) {
    for (std::size_t j = 0; j < kept.size(); ++j) {
      if (i == j) continue;
      EXPECT_NEAR(dense(static_cast<vidx>(i), static_cast<vidx>(j)),
                  -s.edge_weight(kept[i], kept[j]), 1e-12);
    }
  }
}

TEST(StarSchur, RejectsNonStar) {
  const Graph g = gen::path(4);
  EXPECT_THROW((void)star_schur_complement(g, 1), invalid_argument_error);
}

TEST(DenseSchur, IsALaplacian) {
  const Graph g = gen::grid2d(3, 3, gen::WeightSpec::uniform(1.0, 2.0), 5);
  std::vector<vidx> eliminate{0, 4, 8};
  const DenseMatrix s = schur_complement_dense(g, eliminate);
  // Rows sum to zero, off-diagonals nonpositive.
  for (vidx i = 0; i < s.rows(); ++i) {
    double row = 0.0;
    for (vidx j = 0; j < s.cols(); ++j) {
      row += s(i, j);
      if (i != j) {
        EXPECT_LE(s(i, j), 1e-12);
      }
    }
    EXPECT_NEAR(row, 0.0, 1e-10);
  }
}

TEST(DenseSchur, QuadraticFormIsMinimumOverEliminated) {
  // Schur complement energy = min over eliminated coordinates of the full
  // quadratic form; check x'Sx <= [x; y]' L [x; y] for arbitrary y.
  const Graph g =
      gen::random_planar_triangulation(9, gen::WeightSpec::uniform(1, 3), 7);
  std::vector<vidx> eliminate{7, 8};
  std::vector<vidx> kept;
  const DenseMatrix s = schur_complement_dense(g, eliminate, &kept);
  const DenseMatrix l = dense_laplacian(g);
  std::vector<double> x_kept{0.3, -1.2, 0.7, 0.0, 2.0, -0.5, 0.9};
  std::vector<double> sx(7);
  s.matvec(x_kept, sx);
  double schur_energy = 0.0;
  for (std::size_t i = 0; i < 7; ++i) schur_energy += x_kept[i] * sx[i];
  for (double y1 : {-1.0, 0.0, 0.5}) {
    for (double y2 : {-0.3, 0.0, 1.1}) {
      std::vector<double> full(9, 0.0);
      for (std::size_t i = 0; i < kept.size(); ++i) {
        full[static_cast<std::size_t>(kept[i])] = x_kept[i];
      }
      full[7] = y1;
      full[8] = y2;
      std::vector<double> lf(9);
      l.matvec(full, lf);
      double full_energy = 0.0;
      for (std::size_t i = 0; i < 9; ++i) full_energy += full[i] * lf[i];
      EXPECT_LE(schur_energy, full_energy + 1e-9);
    }
  }
}

TEST(DenseSchur, EliminationOrderIrrelevant) {
  const Graph g = gen::grid2d(3, 3, gen::WeightSpec::uniform(1.0, 2.0), 9);
  std::vector<vidx> order1{0, 1, 2};
  std::vector<vidx> order2{2, 0, 1};
  const DenseMatrix s1 = schur_complement_dense(g, order1);
  const DenseMatrix s2 = schur_complement_dense(g, order2);
  EXPECT_LT(s1.frobenius_distance(s2), 1e-10);
}

TEST(DenseSchur, RejectsBadInput) {
  const Graph g = gen::path(4);
  std::vector<vidx> dup{1, 1};
  EXPECT_THROW((void)schur_complement_dense(g, dup), invalid_argument_error);
  std::vector<vidx> oob{9};
  EXPECT_THROW((void)schur_complement_dense(g, oob), invalid_argument_error);
}

TEST(SteinerSchur, SupportsAWithinFactorThree) {
  // sigma(A, S_P) = sigma(A, B_S) (Gremban / Lemma 3.2 direction). Routing
  // every A-edge through the cluster roots has dilation <= 3 and congestion
  // <= 1 (leaf capacities are vertex volumes), so x'Ax <= 3 x'B x, i.e.
  // lambda_min(B_S, A) >= 1/3.
  const Graph a = gen::grid2d(4, 3, gen::WeightSpec::uniform(1.0, 2.0), 11);
  Decomposition p;
  p.num_clusters = 3;
  p.assignment.resize(12);
  for (vidx v = 0; v < 12; ++v) p.assignment[static_cast<std::size_t>(v)] = v / 4;
  const DenseMatrix b = steiner_schur_complement_dense(a, p);
  const double lmin = lambda_min_laplacian_pencil(b, dense_laplacian(a));
  EXPECT_GE(lmin, 1.0 / 3.0 - 1e-9);
}

TEST(SteinerSchur, SingleEdgeSingleClusterHalves) {
  // A = one unit edge, one cluster: T = unit star on 2 leaves, Schur gives
  // half the edge: B = A / 2.
  std::vector<WeightedEdge> edges{{0, 1, 1.0}};
  const Graph a(2, edges);
  Decomposition p;
  p.num_clusters = 1;
  p.assignment = {0, 0};
  const DenseMatrix b = steiner_schur_complement_dense(a, p);
  EXPECT_NEAR(b(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(b(0, 1), -0.5, 1e-12);
}

}  // namespace
}  // namespace hicond
