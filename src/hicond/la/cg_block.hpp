// Batched (multi-RHS) flexible PCG.
//
// k right-hand sides on ONE operator share every pass over the operator's
// data: the blocked SpMV reads the CSR arrays once per iteration for all
// still-active columns, and the blocked preconditioner traverses the
// multilevel hierarchy once per iteration instead of once per RHS. The
// batching is *lockstep with per-column state*: each column carries its own
// scalar recurrence (alpha, beta, residual norm) computed by the same la/
// kernels in the same order as a single flexible_pcg_solve, and a column
// that converges (or breaks down) is frozen out of subsequent block
// applications. Column j of the result is therefore bitwise identical to
// the vector a standalone flexible_pcg_solve on (b_j, x_j) produces -- the
// determinism contract tests/test_serve.cpp pins at 1 and 8 threads.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "hicond/la/cg.hpp"

namespace hicond {

/// Y = Op(X) for k vectors stored column-major (column j occupies
/// [j*n, (j+1)*n) of both spans). Must agree bitwise, per column, with the
/// operator's single-vector application for the batched-solve determinism
/// guarantee to hold.
using BlockOperator =
    std::function<void(std::span<const double>, std::span<double>, int)>;

/// Wrap a single-vector operator as a (column-looping) block operator --
/// trivially bitwise-faithful, with none of the amortization.
[[nodiscard]] BlockOperator block_operator_from(LinearOperator op);

/// Flexible PCG over k right-hand sides stored column-major in `b`; `x`
/// holds the initial guesses on entry and the solutions on exit. Returns
/// one SolveStats per column, each identical to what flexible_pcg_solve
/// would report for that column alone.
std::vector<SolveStats> batched_flexible_pcg_solve(
    const BlockOperator& a, const BlockOperator& m_inv,
    std::span<const double> b, std::span<double> x, int k,
    const CgOptions& options = {});

}  // namespace hicond
