#include "tidy_checks.hpp"

#include <algorithm>
#include <cctype>
#include <set>
#include <string>
#include <utility>

#include "clang/AST/ASTContext.h"
#include "clang/AST/Decl.h"
#include "clang/AST/DeclCXX.h"
#include "clang/AST/DeclTemplate.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/OpenMPClause.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/AST/StmtOpenMP.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Lex/MacroInfo.h"
#include "clang/Lex/PPCallbacks.h"
#include "clang/Lex/Preprocessor.h"
#include "llvm/ADT/DenseMap.h"
#include "llvm/ADT/DenseSet.h"

#include "tidy_context.hpp"

namespace hicond_tidy {

namespace {

using clang::dyn_cast;
using clang::isa;

std::string lowered(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool isInChronoNamespace(const clang::Decl* d) {
  for (const clang::DeclContext* dc = d->getDeclContext(); dc != nullptr;
       dc = dc->getParent()) {
    if (const auto* ns = dyn_cast<clang::NamespaceDecl>(dc)) {
      if (ns->getIdentifier() != nullptr && ns->getName() == "chrono" &&
          ns->isInStdNamespace()) {
        return true;
      }
    }
  }
  return false;
}

/// Does a statement subtree contain anything with side effects? Expr
/// subtrees are answered by clang's own HasSideEffects; DeclStmt inits are
/// checked explicitly because decls are not child statements.
bool stmtHasSideEffects(const clang::Stmt* s, const clang::ASTContext& ast) {
  if (s == nullptr) return false;
  if (const auto* ds = dyn_cast<clang::DeclStmt>(s)) {
    for (const clang::Decl* d : ds->decls()) {
      if (const auto* vd = dyn_cast<clang::VarDecl>(d)) {
        const clang::Expr* init = vd->getInit();
        if (init != nullptr && init->HasSideEffects(ast)) return true;
      }
    }
    return false;
  }
  if (const auto* e = dyn_cast<clang::Expr>(s)) {
    return e->HasSideEffects(ast);
  }
  for (const clang::Stmt* child : s->children()) {
    if (stmtHasSideEffects(child, ast)) return true;
  }
  return false;
}

/// Collects every VarDecl declared inside a statement subtree (loop
/// variables, scratch buffers, nested-lambda parameters, ...). Used to
/// decide which names are iteration-private inside a funnel lambda.
class LocalDeclCollector : public clang::RecursiveASTVisitor<LocalDeclCollector> {
 public:
  bool VisitVarDecl(clang::VarDecl* v) {
    locals_.insert(v->getCanonicalDecl());
    return true;
  }
  void add(const clang::VarDecl* v) { locals_.insert(v->getCanonicalDecl()); }
  [[nodiscard]] bool contains(const clang::VarDecl* v) const {
    return locals_.count(v->getCanonicalDecl()) != 0;
  }

 private:
  llvm::DenseSet<const clang::VarDecl*> locals_;
};

/// True when `e` (an index expression) references any iteration-private
/// variable or omp_get_thread_num() -- i.e. the write target depends on
/// which iteration/thread executes it, which is what owner-computes needs.
class IndexDependsScan : public clang::RecursiveASTVisitor<IndexDependsScan> {
 public:
  explicit IndexDependsScan(const LocalDeclCollector& locals)
      : locals_(locals) {}

  bool VisitDeclRefExpr(clang::DeclRefExpr* dre) {
    if (const auto* vd = dyn_cast<clang::VarDecl>(dre->getDecl())) {
      if (locals_.contains(vd)) depends_ = true;
    }
    return true;
  }
  bool VisitCallExpr(clang::CallExpr* c) {
    const clang::FunctionDecl* fd = c->getDirectCallee();
    if (fd != nullptr && fd->getIdentifier() != nullptr &&
        fd->getName() == "omp_get_thread_num") {
      depends_ = true;
    }
    return true;
  }
  [[nodiscard]] bool depends() const { return depends_; }

 private:
  const LocalDeclCollector& locals_;
  bool depends_ = false;
};

/// Scans one funnel-lambda body for writes that violate owner-computes:
/// subscript stores into captured containers whose index does not depend
/// on the iteration variable, mutating container calls on captured
/// containers, and read-modify-write updates of captured scalars.
class OwnerComputesScan : public clang::RecursiveASTVisitor<OwnerComputesScan> {
 public:
  OwnerComputesScan(TidyContext& ctx, const clang::SourceManager& sm,
                    const LocalDeclCollector& locals)
      : ctx_(ctx), sm_(sm), locals_(locals) {}

  bool VisitBinaryOperator(clang::BinaryOperator* b) {
    if (b->isAssignmentOp()) {
      checkWrite(b->getLHS(), b->isCompoundAssignmentOp());
    }
    return true;
  }

  bool VisitUnaryOperator(clang::UnaryOperator* u) {
    if (u->isIncrementDecrementOp()) checkWrite(u->getSubExpr(), true);
    return true;
  }

  bool VisitCXXOperatorCallExpr(clang::CXXOperatorCallExpr* c) {
    const clang::OverloadedOperatorKind k = c->getOperator();
    const bool compound =
        k == clang::OO_PlusEqual || k == clang::OO_MinusEqual ||
        k == clang::OO_StarEqual || k == clang::OO_SlashEqual ||
        k == clang::OO_PercentEqual || k == clang::OO_CaretEqual ||
        k == clang::OO_AmpEqual || k == clang::OO_PipeEqual ||
        k == clang::OO_LessLessEqual || k == clang::OO_GreaterGreaterEqual ||
        k == clang::OO_PlusPlus || k == clang::OO_MinusMinus;
    if ((k == clang::OO_Equal || compound) && c->getNumArgs() >= 1) {
      checkWrite(c->getArg(0), compound);
    }
    return true;
  }

  bool VisitCXXMemberCallExpr(clang::CXXMemberCallExpr* c) {
    const clang::CXXMethodDecl* m = c->getMethodDecl();
    if (m == nullptr || m->getIdentifier() == nullptr) return true;
    const llvm::StringRef name = m->getName();
    static const char* kMutators[] = {"push_back", "emplace_back", "pop_back",
                                      "insert",    "emplace",      "erase",
                                      "clear",     "resize"};
    const bool mutating =
        std::any_of(std::begin(kMutators), std::end(kMutators),
                    [&](const char* s) { return name == s; });
    if (!mutating) return true;
    const clang::Expr* obj = c->getImplicitObjectArgument();
    if (obj != nullptr && baseIsShared(obj)) {
      ctx_.reportIfActive(
          sm_, c->getExprLoc(), "owner-computes",
          ("call to '" + name + "()' on a captured container inside a "
           "funnel lambda races across iterations; collect per-iteration "
           "results into owner-indexed slots instead")
              .str());
    }
    return true;
  }

 private:
  // Is the (stripped) base of a write target shared across iterations?
  // Captured locals from the enclosing function, members reached through
  // the captured `this`, and nested subscripts into either all count;
  // lambda-local scratch does not.
  bool baseIsShared(const clang::Expr* base) {
    const clang::Expr* e = base->IgnoreParenImpCasts();
    if (const auto* dre = dyn_cast<clang::DeclRefExpr>(e)) {
      const auto* vd = dyn_cast<clang::VarDecl>(dre->getDecl());
      return vd != nullptr && !locals_.contains(vd);
    }
    if (const auto* me = dyn_cast<clang::MemberExpr>(e)) {
      return baseIsShared(me->getBase());
    }
    if (isa<clang::CXXThisExpr>(e)) return true;
    if (const auto* as = dyn_cast<clang::ArraySubscriptExpr>(e)) {
      return baseIsShared(as->getBase());
    }
    if (const auto* oc = dyn_cast<clang::CXXOperatorCallExpr>(e)) {
      if (oc->getOperator() == clang::OO_Subscript && oc->getNumArgs() >= 1) {
        return baseIsShared(oc->getArg(0));
      }
    }
    return false;
  }

  void checkWrite(const clang::Expr* lhs, bool compound) {
    const clang::Expr* e = lhs->IgnoreParenImpCasts();
    const clang::Expr* base = nullptr;
    const clang::Expr* idx = nullptr;
    if (const auto* as = dyn_cast<clang::ArraySubscriptExpr>(e)) {
      base = as->getBase();
      idx = as->getIdx();
    } else if (const auto* oc = dyn_cast<clang::CXXOperatorCallExpr>(e)) {
      if (oc->getOperator() == clang::OO_Subscript && oc->getNumArgs() == 2) {
        base = oc->getArg(0);
        idx = oc->getArg(1);
      }
    }
    if (base == nullptr) {
      // Plain variable target. Read-modify-write on a captured scalar is
      // a cross-iteration race; plain stores of identical values are left
      // to TSan, so only compound updates are flagged.
      if (!compound) return;
      if (const auto* dre = dyn_cast<clang::DeclRefExpr>(e)) {
        const auto* vd = dyn_cast<clang::VarDecl>(dre->getDecl());
        if (vd != nullptr && !locals_.contains(vd) &&
            !vd->getType().isConstQualified()) {
          ctx_.reportIfActive(
              sm_, e->getExprLoc(), "owner-computes",
              "read-modify-write of captured variable '" +
                  vd->getNameAsString() +
                  "' inside a funnel lambda races across iterations; "
                  "accumulate with parallel_sum/parallel_max or into an "
                  "owner-indexed slot");
        }
      }
      return;
    }
    if (!baseIsShared(base)) return;
    IndexDependsScan scan(locals_);
    scan.TraverseStmt(const_cast<clang::Expr*>(idx));
    if (scan.depends()) return;
    ctx_.reportIfActive(
        sm_, e->getExprLoc(), "owner-computes",
        "write into a captured container at an index that does not depend "
        "on the iteration variable; every iteration targets the same slot "
        "(racy and schedule-dependent) -- index by the loop variable or "
        "use a lambda-local buffer");
  }

  TidyContext& ctx_;
  const clang::SourceManager& sm_;
  const LocalDeclCollector& locals_;
};

// --- untrusted-size taint machinery ----------------------------------------

/// Is this call one of the designated taint sanitizers: hicond::checked_size
/// or anything validation-shaped (validate(), revalidate_...)?
bool isSanitizerCall(const clang::CallExpr* c) {
  const clang::FunctionDecl* fd = c->getDirectCallee();
  if (fd == nullptr || fd->getIdentifier() == nullptr) return false;
  const std::string name = fd->getNameAsString();
  return name == "checked_size" ||
         lowered(name).find("validat") != std::string::npos;
}

/// Is this call a taint source -- an integer freshly decoded from untrusted
/// bytes? Snapshot Reader::u8/u16/u32/u64 member calls and the NDJSON
/// number_or() helper qualify; JsonValue's raw `.number` member is handled
/// separately as a MemberExpr.
bool isSourceCall(const clang::CallExpr* c) {
  const clang::FunctionDecl* fd = c->getDirectCallee();
  if (fd == nullptr || fd->getIdentifier() == nullptr) return false;
  const llvm::StringRef n = fd->getName();
  if (n == "number_or") return true;
  if (isa<clang::CXXMemberCallExpr>(c)) {
    return n == "u8" || n == "u16" || n == "u32" || n == "u64";
  }
  return false;
}

bool isSourceMember(const clang::MemberExpr* me) {
  const clang::ValueDecl* d = me->getMemberDecl();
  return d != nullptr && d->getIdentifier() != nullptr &&
         d->getName() == "number";
}

/// Collects the variables an expression reads and whether it contains a
/// taint source directly. Sanitizer calls are opaque: their result is clean
/// by definition, so the scan does not descend into them.
class ExprTaintScan : public clang::RecursiveASTVisitor<ExprTaintScan> {
 public:
  bool TraverseCallExpr(clang::CallExpr* c) {
    return traverseCall(c, [&] {
      return clang::RecursiveASTVisitor<ExprTaintScan>::TraverseCallExpr(c);
    });
  }
  bool TraverseCXXMemberCallExpr(clang::CXXMemberCallExpr* c) {
    return traverseCall(c, [&] {
      return clang::RecursiveASTVisitor<
          ExprTaintScan>::TraverseCXXMemberCallExpr(c);
    });
  }
  bool VisitMemberExpr(clang::MemberExpr* me) {
    if (isSourceMember(me)) has_source = true;
    return true;
  }
  bool VisitDeclRefExpr(clang::DeclRefExpr* dre) {
    if (const auto* vd = dyn_cast<clang::VarDecl>(dre->getDecl())) {
      vars.push_back(vd->getCanonicalDecl());
    }
    return true;
  }

  std::vector<const clang::VarDecl*> vars;
  bool has_source = false;

 private:
  template <typename Recurse>
  bool traverseCall(clang::CallExpr* c, Recurse recurse) {
    if (isSanitizerCall(c)) return true;  // result is clean; args untouched
    if (isSourceCall(c)) {
      has_source = true;
      return true;
    }
    return recurse();
  }
};

/// Function-local taint simulation for the untrusted-size check.
///
/// One pass over a function body collects Assign / Sanitize / Sink events
/// keyed by their physical file offset; replaying them in source order
/// approximates straight-line dataflow. Sources: snapshot Reader u8..u64,
/// JsonValue .number, number_or(). Sanitizers: mentioning a variable inside
/// a HICOND_CHECK-family invocation, or passing it to checked_size()/any
/// validate-shaped call. Sinks: resize/reserve arguments, new T[n] sizes,
/// subscript indices -- unless the sink itself sits inside a validation
/// macro (the check *is* the validation there). Source order is an
/// approximation (it ignores branches and loop back-edges), which is the
/// right trade for a lint: re-sanitize inside the loop if it fires.
class TaintScan : public clang::RecursiveASTVisitor<TaintScan> {
 public:
  TaintScan(TidyContext& ctx, const clang::SourceManager& sm,
            const MacroUseLog& macros)
      : ctx_(ctx), sm_(sm), macros_(macros) {}

  void run(const clang::FunctionDecl* fd) {
    events_.clear();
    fid_ = clang::FileID();
    TraverseStmt(fd->getBody());
    std::stable_sort(events_.begin(), events_.end(),
                     [](const Event& a, const Event& b) {
                       return a.offset < b.offset;
                     });
    llvm::DenseSet<const clang::VarDecl*> tainted;
    for (const Event& ev : events_) {
      switch (ev.kind) {
        case Event::assign: {
          const bool rhs_tainted =
              ev.has_source ||
              std::any_of(ev.vars.begin(), ev.vars.end(),
                          [&](const clang::VarDecl* v) {
                            return tainted.count(v) != 0;
                          });
          if (rhs_tainted) {
            tainted.insert(ev.var);
          } else if (!ev.compound) {
            tainted.erase(ev.var);
          }
          break;
        }
        case Event::sanitize:
          tainted.erase(ev.var);
          break;
        case Event::sink: {
          const clang::VarDecl* hit = nullptr;
          for (const clang::VarDecl* v : ev.vars) {
            if (tainted.count(v) != 0) {
              hit = v;
              break;
            }
          }
          if (ev.has_source || hit != nullptr) {
            ctx_.reportIfActive(
                sm_, ev.loc, "untrusted-size",
                "untrusted " + ev.what +
                    (hit != nullptr ? " ('" + hit->getNameAsString() + "')"
                                    : "") +
                    " decoded from wire/snapshot input reaches " + ev.use +
                    " without a cap; route it through hicond::checked_size()"
                    ", a validate() call, or a HICOND_CHECK range test "
                    "first");
          }
          break;
        }
      }
    }
  }

  bool VisitVarDecl(clang::VarDecl* v) {
    const clang::Expr* init = v->getInit();
    if (init == nullptr) return true;
    unsigned offset = 0;
    if (!fileOffset(v->getLocation(), offset)) return true;
    addAssign(v->getCanonicalDecl(), init, /*compound=*/false, offset);
    return true;
  }

  bool VisitBinaryOperator(clang::BinaryOperator* b) {
    if (!b->isAssignmentOp()) return true;
    const auto* dre =
        dyn_cast<clang::DeclRefExpr>(b->getLHS()->IgnoreParenImpCasts());
    if (dre == nullptr) return true;
    const auto* vd = dyn_cast<clang::VarDecl>(dre->getDecl());
    if (vd == nullptr) return true;
    unsigned offset = 0;
    if (!fileOffset(b->getOperatorLoc(), offset)) return true;
    addAssign(vd->getCanonicalDecl(), b->getRHS(),
              b->isCompoundAssignmentOp(), offset);
    return true;
  }

  bool VisitDeclRefExpr(clang::DeclRefExpr* dre) {
    // A variable mentioned inside a HICOND_CHECK-family invocation has, by
    // project convention, just been range-tested: sanitize it from there on.
    const auto* vd = dyn_cast<clang::VarDecl>(dre->getDecl());
    if (vd == nullptr) return true;
    unsigned offset = 0;
    clang::FileID fid;
    if (!fileLoc(dre->getLocation(), fid, offset)) return true;
    if (macros_.containsOffset(fid, offset)) {
      events_.push_back(Event::sanitizeAt(vd->getCanonicalDecl(), offset));
    }
    return true;
  }

  bool VisitCallExpr(clang::CallExpr* c) {
    if (!isSanitizerCall(c)) return true;
    unsigned offset = 0;
    if (!fileOffset(c->getExprLoc(), offset)) return true;
    for (const clang::Expr* arg : c->arguments()) {
      ExprTaintScan scan;
      scan.TraverseStmt(const_cast<clang::Expr*>(arg));
      for (const clang::VarDecl* v : scan.vars) {
        events_.push_back(Event::sanitizeAt(v, offset));
      }
    }
    return true;
  }

  bool VisitCXXMemberCallExpr(clang::CXXMemberCallExpr* c) {
    const clang::CXXMethodDecl* m = c->getMethodDecl();
    if (m == nullptr || m->getIdentifier() == nullptr) return true;
    const llvm::StringRef name = m->getName();
    if ((name == "resize" || name == "reserve") && c->getNumArgs() >= 1) {
      addSink(c->getArg(0), "size", "'" + name.str() + "()'");
    }
    return true;
  }

  bool VisitCXXNewExpr(clang::CXXNewExpr* e) {
    if (e->isArray()) {
      if (const auto size = e->getArraySize()) {
        if (*size != nullptr) {
          addSink(*size, "size", "an array-new allocation");
        }
      }
    }
    return true;
  }

  bool VisitArraySubscriptExpr(clang::ArraySubscriptExpr* e) {
    addSink(e->getIdx(), "index", "a subscript");
    return true;
  }

  bool VisitCXXOperatorCallExpr(clang::CXXOperatorCallExpr* c) {
    if (c->getOperator() == clang::OO_Subscript && c->getNumArgs() == 2) {
      addSink(c->getArg(1), "index", "a subscript");
    }
    return true;
  }

 private:
  struct Event {
    enum Kind { assign, sanitize, sink };
    Kind kind = assign;
    unsigned offset = 0;
    const clang::VarDecl* var = nullptr;        // assign lhs / sanitize target
    std::vector<const clang::VarDecl*> vars;    // assign rhs / sink reads
    bool has_source = false;
    bool compound = false;
    clang::SourceLocation loc;
    std::string what;  // sink only: "size" / "index"
    std::string use;   // sink only: what it reaches

    static Event sanitizeAt(const clang::VarDecl* v, unsigned offset) {
      Event ev;
      ev.kind = sanitize;
      ev.offset = offset;
      ev.var = v;
      return ev;
    }
  };

  bool fileLoc(clang::SourceLocation loc, clang::FileID& fid,
               unsigned& offset) const {
    const clang::SourceLocation file_loc = sm_.getFileLoc(loc);
    if (file_loc.isInvalid()) return false;
    const auto dec = sm_.getDecomposedLoc(file_loc);
    fid = dec.first;
    offset = dec.second;
    return true;
  }

  /// Offset within the function's own file; events from other files
  /// (macro bodies in headers) are dropped rather than mis-ordered.
  bool fileOffset(clang::SourceLocation loc, unsigned& offset) {
    clang::FileID fid;
    if (!fileLoc(loc, fid, offset)) return false;
    if (fid_.isInvalid()) fid_ = fid;
    return fid == fid_;
  }

  void addAssign(const clang::VarDecl* lhs, const clang::Expr* rhs,
                 bool compound, unsigned offset) {
    ExprTaintScan scan;
    scan.TraverseStmt(const_cast<clang::Expr*>(rhs));
    Event ev;
    ev.kind = Event::assign;
    ev.offset = offset;
    ev.var = lhs;
    ev.vars = std::move(scan.vars);
    ev.has_source = scan.has_source;
    ev.compound = compound;
    events_.push_back(std::move(ev));
  }

  void addSink(const clang::Expr* arg, const char* what,
               const std::string& use) {
    unsigned offset = 0;
    clang::FileID fid;
    if (!fileLoc(arg->getExprLoc(), fid, offset)) return;
    if (fid_.isValid() && fid != fid_) return;
    if (macros_.containsOffset(fid, offset)) {
      return;  // HICOND_CHECK(!seen[tag], ...) -- the check is the guard
    }
    ExprTaintScan scan;
    scan.TraverseStmt(const_cast<clang::Expr*>(arg));
    Event ev;
    ev.kind = Event::sink;
    ev.offset = offset;
    ev.vars = std::move(scan.vars);
    ev.has_source = scan.has_source;
    ev.loc = arg->getExprLoc();
    ev.what = what;
    ev.use = use;
    events_.push_back(std::move(ev));
  }

  TidyContext& ctx_;
  const clang::SourceManager& sm_;
  const MacroUseLog& macros_;
  clang::FileID fid_;
  std::vector<Event> events_;
};

/// Collects direct callees (calls and constructions) of a function body
/// for the boundary-validation reachability pass.
class CalleeCollector : public clang::RecursiveASTVisitor<CalleeCollector> {
 public:
  bool VisitCallExpr(clang::CallExpr* c) {
    if (const clang::FunctionDecl* fd = c->getDirectCallee()) {
      callees.push_back(fd);
    }
    return true;
  }
  bool VisitCXXConstructExpr(clang::CXXConstructExpr* c) {
    if (const clang::CXXConstructorDecl* ctor = c->getConstructor()) {
      callees.push_back(ctor);
    }
    return true;
  }
  std::vector<const clang::FunctionDecl*> callees;
};

class TidyVisitor : public clang::RecursiveASTVisitor<TidyVisitor> {
 public:
  TidyVisitor(TidyContext& ctx, clang::ASTContext& ast,
              const MacroUseLog& macros)
      : ctx_(ctx), ast_(ast), sm_(ast.getSourceManager()), macros_(macros) {}

  bool shouldVisitTemplateInstantiations() const { return false; }
  bool shouldWalkTypesOfTypeLocs() const { return false; }

  // --- funnel-discipline ---------------------------------------------------
  bool VisitOMPExecutableDirective(clang::OMPExecutableDirective* d) {
    const clang::SourceLocation loc = d->getBeginLoc();
    if (isa<clang::OMPParallelDirective>(d) ||
        isa<clang::OMPParallelForDirective>(d) ||
        isa<clang::OMPParallelForSimdDirective>(d) ||
        isa<clang::OMPParallelSectionsDirective>(d)) {
      ctx_.reportIfActive(
          sm_, loc, "funnel-discipline",
          "raw '#pragma omp parallel' outside util/parallel.hpp; enter "
          "parallelism through parallel_region()/parallel_for() so thread "
          "count, TSan annotations, and determinism stay centralized");
    } else if (isa<clang::OMPAtomicDirective>(d)) {
      ctx_.reportIfActive(
          sm_, loc, "funnel-discipline",
          "'#pragma omp atomic' commits updates in schedule order, which "
          "breaks bitwise reproducibility; use owner-computes writes or "
          "parallel_sum's fixed-block reduction");
    } else if (isa<clang::OMPCriticalDirective>(d)) {
      ctx_.reportIfActive(
          sm_, loc, "funnel-discipline",
          "'#pragma omp critical' serializes in arrival order, which "
          "breaks bitwise reproducibility; restructure as owner-computes "
          "or a fixed-block reduction");
    }
    if (d->hasClausesOfKind<clang::OMPReductionClause>()) {
      ctx_.reportIfActive(
          sm_, loc, "funnel-discipline",
          "OpenMP 'reduction(...)' combines partials in team order, which "
          "is not bitwise reproducible for floating point; use "
          "parallel_sum/parallel_max (fixed-block combining)");
    }
    return true;
  }

  // --- float-compare -------------------------------------------------------
  bool VisitBinaryOperator(clang::BinaryOperator* b) {
    if (b->getOpcode() != clang::BO_EQ && b->getOpcode() != clang::BO_NE) {
      return true;
    }
    const clang::Expr* l = b->getLHS();
    const clang::Expr* r = b->getRHS();
    if (l->getType().isNull() || r->getType().isNull()) return true;
    if (!l->getType()->isRealFloatingType() &&
        !r->getType()->isRealFloatingType()) {
      return true;
    }
    ctx_.reportIfActive(
        sm_, b->getOperatorLoc(), "float-compare",
        b->getOpcode() == clang::BO_EQ
            ? "'==' on floating-point values; use exactly_equal()/"
              "approx_equal() from util/float_eq.hpp (or annotate the line "
              "with 'float-eq: exact' when bitwise equality is intended)"
            : "'!=' on floating-point values; use !exactly_equal()/"
              "!approx_equal() from util/float_eq.hpp (or annotate the line "
              "with 'float-eq: exact' when bitwise equality is intended)");
    return true;
  }

  // --- ordered-iteration ---------------------------------------------------
  bool VisitCXXForRangeStmt(clang::CXXForRangeStmt* s) {
    const clang::Expr* range = s->getRangeInit();
    if (range == nullptr || range->getType().isNull()) return true;
    const clang::CXXRecordDecl* rd =
        range->getType().getNonReferenceType()->getAsCXXRecordDecl();
    if (rd == nullptr) return true;
    const std::string qn = rd->getQualifiedNameAsString();
    if (qn != "std::unordered_map" && qn != "std::unordered_set" &&
        qn != "std::unordered_multimap" && qn != "std::unordered_multiset") {
      return true;
    }
    if (!stmtHasSideEffects(s->getBody(), ast_)) return true;
    ctx_.reportIfActive(
        sm_, s->getForLoc(), "ordered-iteration",
        "range-for over " + qn +
            " with a side-effecting body visits elements in hash order, "
            "which varies across standard libraries and run conditions; "
            "iterate a sorted key list, or annotate with "
            "'hicond-tidy: allow(ordered-iteration)' if every element is "
            "processed order-independently");
    return true;
  }

  // --- no-std-rand, fd-ownership, syscall-discipline, owner-computes -------
  bool VisitCallExpr(clang::CallExpr* c) {
    const clang::FunctionDecl* fd = c->getDirectCallee();
    if (fd == nullptr) return true;
    if (fd->getIdentifier() != nullptr) {
      const llvm::StringRef n = fd->getName();
      const clang::DeclContext* dc = fd->getDeclContext()->getRedeclContext();
      const bool global_fn = dc->isTranslationUnit() || dc->isStdNamespace();
      if (global_fn && (n == "rand" || n == "srand" || n == "rand_r")) {
        ctx_.reportIfActive(
            sm_, c->getExprLoc(), "no-std-rand",
            "'" + n.str() +
                "()' draws from hidden global state and is not "
                "reproducible across platforms; use hicond::Rng "
                "(util/rng.hpp) with an explicit seed");
      }
      if (global_fn && n == "close") {
        ctx_.reportIfActive(
            sm_, c->getExprLoc(), "fd-ownership",
            "raw close() call; descriptors must be owned by "
            "hicond::unique_fd (util/unique_fd.hpp) so early returns and "
            "exceptions cannot leak them -- use reset()/scope exit "
            "instead");
      }
      if (global_fn && isRawIoSyscall(n)) {
        ctx_.reportIfActive(
            sm_, c->getExprLoc(), "syscall-discipline",
            "direct '" + n.str() +
                "()' outside serve/wire.{hpp,cpp}; raw I/O syscalls drop "
                "bytes on EINTR/short transfers -- go through the wire "
                "helpers (write_all/write_line/read_into/"
                "drain_nonblocking)");
      }
    }
    const std::string qn = fd->getQualifiedNameAsString();
    if (qn == "hicond::parallel_for" ||
        qn == "hicond::parallel_for_interleaved" ||
        qn == "hicond::parallel_region" || qn == "hicond::parallel_sum" ||
        qn == "hicond::parallel_max" || qn == "hicond::parallel_any") {
      checkFunnelLambda(c);
    }
    return true;
  }

  // --- chrono-timing -------------------------------------------------------
  bool VisitDeclRefExpr(clang::DeclRefExpr* e) {
    const clang::NamedDecl* d = e->getDecl();
    if (d != nullptr && isInChronoNamespace(d)) {
      reportChrono(e->getBeginLoc());
    }
    return true;
  }

  bool VisitVarDecl(clang::VarDecl* v) {
    if (v->getType().isNull()) return true;
    const clang::CXXRecordDecl* rd =
        v->getType().getNonReferenceType()->getAsCXXRecordDecl();
    if (rd != nullptr && isInChronoNamespace(rd)) {
      reportChrono(v->getLocation());
    }
    checkFdOwnership(v);
    return true;
  }

  bool VisitCXXConstructExpr(clang::CXXConstructExpr* e) {
    const clang::CXXConstructorDecl* ctor = e->getConstructor();
    if (ctor != nullptr && isInChronoNamespace(ctor->getParent())) {
      reportChrono(e->getExprLoc());
    }
    return true;
  }

  // --- boundary-validation: collect bodies ---------------------------------
  bool VisitFunctionDecl(clang::FunctionDecl* f) {
    if (f->doesThisDeclarationHaveABody() && f->getBody() != nullptr) {
      bodies_.push_back(f);
    }
    return true;
  }

  void finalize() {
    finalizeBoundaryValidation();
    runTaintScans();
  }

 private:
  static bool isRawIoSyscall(llvm::StringRef n) {
    static const char* kSyscalls[] = {
        "read",  "write",  "readv",   "writev",   "pread",   "pwrite",
        "send",  "recv",   "sendto",  "recvfrom", "sendmsg", "recvmsg",
    };
    return std::any_of(std::begin(kSyscalls), std::end(kSyscalls),
                       [&](const char* s) { return n == s; });
  }

  /// `int fd = socket(...)`: the descriptor lives in a raw int, so any
  /// early return / throw between here and the close() leaks it.
  void checkFdOwnership(const clang::VarDecl* v) {
    if (v->getType().isNull() ||
        !v->getType().getNonReferenceType()->isIntegerType()) {
      return;
    }
    const clang::Expr* init = v->getInit();
    if (init == nullptr) return;
    const auto* call =
        dyn_cast<clang::CallExpr>(init->IgnoreParenImpCasts());
    if (call == nullptr) return;
    const clang::FunctionDecl* fd = call->getDirectCallee();
    if (fd == nullptr || fd->getIdentifier() == nullptr) return;
    const clang::DeclContext* dc = fd->getDeclContext()->getRedeclContext();
    if (!dc->isTranslationUnit() && !dc->isStdNamespace()) return;
    static const char* kFdProducers[] = {
        "open",          "openat",        "creat",         "socket",
        "accept",        "accept4",       "dup",           "dup3",
        "eventfd",       "epoll_create",  "epoll_create1", "memfd_create",
        "timerfd_create", "signalfd",     "inotify_init",  "inotify_init1",
        "mkstemp",
    };
    const llvm::StringRef n = fd->getName();
    const bool produces_fd =
        std::any_of(std::begin(kFdProducers), std::end(kFdProducers),
                    [&](const char* s) { return n == s; });
    if (!produces_fd) return;
    ctx_.reportIfActive(
        sm_, v->getLocation(), "fd-ownership",
        "descriptor returned by '" + n.str() +
            "()' is stored in a raw int; wrap it in hicond::unique_fd "
            "(util/unique_fd.hpp) at the call site so error paths cannot "
            "leak it");
  }

  /// Run the untrusted-size event simulation over every function body in
  /// scope for the check. Lambda call operators are covered through their
  /// enclosing function's body, so the scan treats enclosing function +
  /// lambdas as one local scope.
  void runTaintScans() {
    for (const clang::FunctionDecl* fd : bodies_) {
      if (const auto* m = dyn_cast<clang::CXXMethodDecl>(fd)) {
        if (m->getParent()->isLambda()) continue;
      }
      if (!ctx_.checkEnabledAt(sm_, fd->getLocation(), "untrusted-size")) {
        continue;
      }
      TaintScan scan(ctx_, sm_, macros_);
      scan.run(fd);
    }
  }

  void reportChrono(clang::SourceLocation loc) {
    ctx_.reportIfActive(
        sm_, loc, "chrono-timing",
        "direct std::chrono use outside util/timer and obs/; time through "
        "hicond::Timer / scoped spans so instrumentation stays uniform and "
        "mockable");
  }

  void checkFunnelLambda(const clang::CallExpr* call) {
    if (call->getNumArgs() == 0) return;
    const clang::Expr* arg =
        call->getArg(call->getNumArgs() - 1)->IgnoreImplicit();
    arg = arg->IgnoreParens();
    const auto* lam = dyn_cast<clang::LambdaExpr>(arg);
    if (lam == nullptr) return;
    const clang::CXXMethodDecl* op = lam->getCallOperator();
    if (op == nullptr || !op->hasBody()) return;
    LocalDeclCollector locals;
    locals.TraverseStmt(op->getBody());
    for (const clang::ParmVarDecl* p : op->parameters()) locals.add(p);
    OwnerComputesScan scan(ctx_, sm_, locals);
    scan.TraverseStmt(op->getBody());
  }

  bool isBoundaryCandidate(const clang::FunctionDecl* fd) const {
    if (fd->isImplicit() || fd->isDeleted() || fd->isDefaulted()) return false;
    if (fd->isConstexpr() || fd->isOverloadedOperator()) return false;
    if (fd->getDescribedFunctionTemplate() != nullptr) return false;
    if (isa<clang::CXXConstructorDecl>(fd) ||
        isa<clang::CXXDestructorDecl>(fd) ||
        isa<clang::CXXDeductionGuideDecl>(fd)) {
      return false;
    }
    if (const auto* m = dyn_cast<clang::CXXMethodDecl>(fd)) {
      if (m->getParent()->isLambda()) return false;
    }
    if (!fd->isExternallyVisible()) return false;
    const std::string qn = fd->getQualifiedNameAsString();
    if (qn.find("::detail") != std::string::npos ||
        qn.find("(anonymous") != std::string::npos || qn == "main") {
      return false;
    }
    bool hasCoreParam = false;
    for (const clang::ParmVarDecl* p : fd->parameters()) {
      clang::QualType t = p->getType().getNonReferenceType();
      if (t->isPointerType()) t = t->getPointeeType();
      const clang::CXXRecordDecl* rd =
          t.getUnqualifiedType()->getAsCXXRecordDecl();
      if (rd == nullptr) continue;
      const std::string rqn = rd->getQualifiedNameAsString();
      if (rqn == "hicond::Graph" || rqn == "hicond::CsrMatrix" ||
          rqn == "hicond::Decomposition" || rqn == "hicond::RootedForest") {
        hasCoreParam = true;
        break;
      }
    }
    if (!hasCoreParam) return false;
    const clang::FunctionDecl* canon = fd->getCanonicalDecl();
    if (ctx_.options().fixture_mode) {
      return ctx_.checkEnabledAt(sm_, canon->getLocation(),
                                 "boundary-validation");
    }
    // Only functions whose first declaration sits in a public (non-infra)
    // header are API boundaries.
    const std::string rel = ctx_.relativePath(sm_, canon->getLocation());
    const llvm::StringRef r(rel);
    const auto hasPrefix = [&](llvm::StringRef p) {
      return r.size() >= p.size() && r.substr(0, p.size()) == p;
    };
    if (!hasPrefix("src/hicond/")) return false;
    if (hasPrefix("src/hicond/util/") || hasPrefix("src/hicond/obs/")) {
      return false;
    }
    const std::size_t dot = rel.rfind('.');
    const std::string ext = dot == std::string::npos ? "" : rel.substr(dot);
    return ext == ".hpp" || ext == ".h";
  }

  void finalizeBoundaryValidation() {
    struct Info {
      const clang::FunctionDecl* fd = nullptr;
      bool validated = false;
      std::vector<unsigned> callees;  // indices into infos
    };
    llvm::DenseMap<const clang::FunctionDecl*, unsigned> index;
    std::vector<Info> infos;
    infos.reserve(bodies_.size());
    for (const clang::FunctionDecl* fd : bodies_) {
      index[fd->getCanonicalDecl()] = static_cast<unsigned>(infos.size());
      infos.push_back({fd, false, {}});
    }
    for (Info& info : infos) {
      const clang::Stmt* body = info.fd->getBody();
      const auto b = sm_.getDecomposedExpansionLoc(body->getBeginLoc());
      const auto e = sm_.getDecomposedExpansionLoc(body->getEndLoc());
      if (b.first == e.first && macros_.anyInRange(b.first, b.second, e.second)) {
        info.validated = true;
        continue;
      }
      CalleeCollector cc;
      cc.TraverseStmt(const_cast<clang::Stmt*>(body));
      for (const clang::FunctionDecl* callee : cc.callees) {
        // A call into anything validation-shaped counts, including
        // validators defined in other translation units.
        if (lowered(callee->getNameAsString()).find("validat") !=
            std::string::npos) {
          info.validated = true;
          break;
        }
        const auto it = index.find(callee->getCanonicalDecl());
        if (it != index.end()) info.callees.push_back(it->second);
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (Info& info : infos) {
        if (info.validated) continue;
        for (const unsigned c : info.callees) {
          if (infos[c].validated) {
            info.validated = true;
            changed = true;
            break;
          }
        }
      }
    }
    for (const Info& info : infos) {
      if (info.validated || !isBoundaryCandidate(info.fd)) continue;
      ctx_.reportIfActive(
          sm_, info.fd->getLocation(), "boundary-validation",
          "exported function '" + info.fd->getQualifiedNameAsString() +
              "' takes a core structure but never reaches "
              "HICOND_VALIDATE/HICOND_CHECK (directly or via callees in "
              "this TU); validate inputs at the API boundary or annotate "
              "with 'hicond-tidy: allow(boundary-validation)'");
    }
  }

  TidyContext& ctx_;
  clang::ASTContext& ast_;
  const clang::SourceManager& sm_;
  const MacroUseLog& macros_;
  std::vector<const clang::FunctionDecl*> bodies_;
};

class TidyPPCallbacks : public clang::PPCallbacks {
 public:
  TidyPPCallbacks(clang::SourceManager& sm, std::shared_ptr<MacroUseLog> log)
      : sm_(sm), log_(std::move(log)) {}

  void MacroExpands(const clang::Token& name_tok,
                    const clang::MacroDefinition& /*md*/,
                    clang::SourceRange range,
                    const clang::MacroArgs* /*args*/) override {
    const clang::IdentifierInfo* id = name_tok.getIdentifierInfo();
    if (id == nullptr) return;
    const llvm::StringRef n = id->getName();
    if (n != "HICOND_CHECK" && n != "HICOND_VALIDATE" &&
        n != "HICOND_RUN_VALIDATION" && n != "HICOND_ASSERT" &&
        n != "HICOND_ASSERT_EXPENSIVE") {
      return;
    }
    const auto dec = sm_.getDecomposedExpansionLoc(range.getBegin());
    log_->add(dec.first, dec.second);
    const auto end = sm_.getDecomposedExpansionLoc(range.getEnd());
    if (end.first == dec.first && end.second >= dec.second) {
      log_->addRange(dec.first, dec.second, end.second);
    }
  }

 private:
  clang::SourceManager& sm_;
  std::shared_ptr<MacroUseLog> log_;
};

}  // namespace

void MacroUseLog::add(clang::FileID fid, unsigned offset) {
  uses_[fid].push_back(offset);
}

bool MacroUseLog::anyInRange(clang::FileID fid, unsigned begin,
                             unsigned end) const {
  const auto it = uses_.find(fid);
  if (it == uses_.end()) return false;
  return std::any_of(it->second.begin(), it->second.end(),
                     [&](unsigned off) { return off >= begin && off <= end; });
}

void MacroUseLog::addRange(clang::FileID fid, unsigned begin, unsigned end) {
  ranges_[fid].emplace_back(begin, end);
}

bool MacroUseLog::containsOffset(clang::FileID fid, unsigned offset) const {
  const auto it = ranges_.find(fid);
  if (it == ranges_.end()) return false;
  return std::any_of(it->second.begin(), it->second.end(),
                     [&](const std::pair<unsigned, unsigned>& r) {
                       return offset >= r.first && offset <= r.second;
                     });
}

std::unique_ptr<clang::PPCallbacks> makePPCallbacks(
    clang::SourceManager& sm, std::shared_ptr<MacroUseLog> log) {
  return std::make_unique<TidyPPCallbacks>(sm, std::move(log));
}

void runChecks(TidyContext& ctx, clang::ASTContext& ast,
               const MacroUseLog& macros) {
  TidyVisitor visitor(ctx, ast, macros);
  visitor.TraverseDecl(ast.getTranslationUnitDecl());
  visitor.finalize();
}

}  // namespace hicond_tidy
