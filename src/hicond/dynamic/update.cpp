#include "hicond/dynamic/update.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <utility>

#include "hicond/obs/json.hpp"

namespace hicond::dynamic {

namespace {

/// Normalized (min, max) endpoint key for an undirected edge.
using EdgeKey = std::pair<vidx, vidx>;

EdgeKey edge_key(vidx u, vidx v) {
  return u < v ? EdgeKey{u, v} : EdgeKey{v, u};
}

std::string edge_label(vidx u, vidx v) {
  return "(" + std::to_string(u) + ", " + std::to_string(v) + ")";
}

/// Negative sentinel marking "deleted" in the per-edge final-state map;
/// real weights are validated strictly positive before they get there.
constexpr double kDeleted = -1.0;

}  // namespace

Graph apply_updates(const Graph& g, std::span<const EdgeUpdate> updates) {
  const vidx n = g.num_vertices();

  // Pass 1: simulate the ordered batch into a per-edge final-state map.
  // `edits` holds the post-batch weight of every edge the batch mentions
  // (kDeleted for removed edges); presence checks consult the map first so
  // an edge inserted earlier in the batch can be deleted later in it.
  std::map<EdgeKey, double> edits;
  const auto present = [&](const EdgeKey& key) {
    if (const auto it = edits.find(key); it != edits.end()) {
      return it->second > 0.0;
    }
    return g.has_edge(key.first, key.second);
  };
  for (const EdgeUpdate& up : updates) {
    HICOND_CHECK(up.u >= 0 && up.u < n && up.v >= 0 && up.v < n,
                 "update endpoint out of range " + edge_label(up.u, up.v));
    HICOND_CHECK(up.u != up.v,
                 "update must not create a self-loop " +
                     edge_label(up.u, up.v));
    const EdgeKey key = edge_key(up.u, up.v);
    switch (up.kind) {
      case UpdateKind::insert:
        HICOND_CHECK(!present(key),
                     "insert of already-present edge " +
                         edge_label(up.u, up.v));
        HICOND_CHECK(std::isfinite(up.weight) && up.weight > 0.0,
                     "insert weight must be positive and finite for edge " +
                         edge_label(up.u, up.v));
        edits[key] = up.weight;
        break;
      case UpdateKind::remove:
        HICOND_CHECK(present(key),
                     "delete of absent edge " + edge_label(up.u, up.v));
        edits[key] = kDeleted;
        break;
      case UpdateKind::reweight:
        HICOND_CHECK(present(key),
                     "reweight of absent edge " + edge_label(up.u, up.v));
        HICOND_CHECK(std::isfinite(up.weight) && up.weight > 0.0,
                     "reweight weight must be positive and finite (delete "
                     "the edge instead of reweighting to zero) for edge " +
                         edge_label(up.u, up.v));
        edits[key] = up.weight;
        break;
    }
  }

  // Drop edits that are no-ops against the base graph (insert+delete round
  // trips, reweight back to the identical bits) so untouched rows -- and in
  // the extreme the whole graph -- are copied verbatim.
  std::erase_if(edits, [&](const auto& kv) {
    const double base = g.edge_weight(kv.first.first, kv.first.second);
    if (kv.second > 0.0) {
      return base > 0.0 && base == kv.second;  // float-eq: exact
    }
    return base == 0.0;  // float-eq: exact (absent edge deleted again)
  });

  // Pass 2: rebuild the CSR arrays. Per touched vertex, merge the old sorted
  // row with its sorted edit list; untouched rows are copied verbatim, so a
  // net-no-op batch reproduces the base arrays bit for bit and the content
  // fingerprint is unchanged.
  std::vector<std::vector<HalfEdge>> row_edits(static_cast<std::size_t>(n));
  for (const auto& [key, w] : edits) {
    // std::map iterates keys in sorted order, so per-vertex edit lists come
    // out sorted by target without a separate sort.
    row_edits[static_cast<std::size_t>(key.first)].push_back(
        {key.second, w});
    row_edits[static_cast<std::size_t>(key.second)].push_back(
        {key.first, w});
  }
  for (auto& row : row_edits) {
    std::sort(row.begin(), row.end(),
              [](const HalfEdge& a, const HalfEdge& b) { return a.to < b.to; });
  }

  std::vector<eidx> offsets(static_cast<std::size_t>(n) + 1, 0);
  std::vector<vidx> targets;
  std::vector<double> weights;
  targets.reserve(static_cast<std::size_t>(g.num_arcs()));
  weights.reserve(static_cast<std::size_t>(g.num_arcs()));
  for (vidx v = 0; v < n; ++v) {
    const auto nbrs = g.neighbors(v);
    const auto ws = g.weights(v);
    const auto& edit = row_edits[static_cast<std::size_t>(v)];
    std::size_t i = 0;  // cursor into the old row
    std::size_t j = 0;  // cursor into the edit list
    while (i < nbrs.size() || j < edit.size()) {
      if (j == edit.size() || (i < nbrs.size() && nbrs[i] < edit[j].to)) {
        targets.push_back(nbrs[i]);
        weights.push_back(ws[i]);
        ++i;
      } else if (i < nbrs.size() && nbrs[i] == edit[j].to) {
        // Reweight or delete of an existing arc.
        if (edit[j].weight > 0.0) {
          targets.push_back(nbrs[i]);
          weights.push_back(edit[j].weight);
        }
        ++i;
        ++j;
      } else {
        // Insert of a new arc (a delete edit of an edge absent from the base
        // row cannot reach here: pass 1 requires presence, and insert+delete
        // round trips were erased as no-ops above).
        HICOND_ASSERT(edit[j].weight > 0.0);
        targets.push_back(edit[j].to);
        weights.push_back(edit[j].weight);
        ++j;
      }
    }
    offsets[static_cast<std::size_t>(v) + 1] =
        static_cast<eidx>(targets.size());
  }

  return Graph::from_csr(n, std::move(offsets), std::move(targets),
                         std::move(weights));
}

std::vector<vidx> touched_vertices(std::span<const EdgeUpdate> updates) {
  std::vector<vidx> touched;
  touched.reserve(updates.size() * 2);
  for (const EdgeUpdate& up : updates) {
    touched.push_back(up.u);
    touched.push_back(up.v);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  return touched;
}

std::vector<EdgeUpdate> parse_updates(const obs::JsonValue& array,
                                      std::size_t max_updates) {
  HICOND_CHECK(array.is_array(), "updates must be a JSON array");
  const std::size_t count =
      checked_size(array.array.size(), max_updates, "updates count");
  std::vector<EdgeUpdate> updates;
  updates.reserve(count);
  for (const obs::JsonValue& item : array.array) {
    HICOND_CHECK(item.is_object(), "each update must be a JSON object");
    const obs::JsonValue& kind = item.at("kind");
    HICOND_CHECK(kind.is_string(), "update kind must be a string");
    EdgeUpdate up;
    if (kind.string == "insert") {
      up.kind = UpdateKind::insert;
    } else if (kind.string == "delete" || kind.string == "remove") {
      up.kind = UpdateKind::remove;
    } else if (kind.string == "reweight") {
      up.kind = UpdateKind::reweight;
    } else {
      HICOND_CHECK(false, "unknown update kind '" + kind.string + "'");
    }
    const obs::JsonValue& u = item.at("u");
    const obs::JsonValue& v = item.at("v");
    HICOND_CHECK(u.is_number() && v.is_number(),
                 "update endpoints must be numbers");
    // Endpoints arrive as doubles off the wire; range and integrality are
    // re-checked against the actual graph inside apply_updates.
    up.u = static_cast<vidx>(u.number);
    up.v = static_cast<vidx>(v.number);
    if (up.kind != UpdateKind::remove) {
      const obs::JsonValue& w = item.at("weight");
      HICOND_CHECK(w.is_number(), "update weight must be a number");
      up.weight = w.number;
    }
    updates.push_back(up);
  }
  return updates;
}

}  // namespace hicond::dynamic
