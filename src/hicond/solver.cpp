#include "hicond/solver.hpp"

#include "hicond/graph/connectivity.hpp"
#include "hicond/la/cg_block.hpp"
#include "hicond/la/vector_ops.hpp"
#include "hicond/obs/trace.hpp"
#include "hicond/util/timer.hpp"

namespace hicond {

LaplacianSolver::LaplacianSolver(Graph g,
                                 const LaplacianSolverOptions& options)
    : options_(options), graph_(std::make_shared<Graph>(std::move(g))) {
  HICOND_SPAN("solver.setup");
  const Timer setup_timer;
  HICOND_CHECK(graph_->num_vertices() >= 1, "empty graph");
  HICOND_RUN_VALIDATION(expensive, graph_->validate());
  HICOND_CHECK(is_connected(*graph_),
               "LaplacianSolver requires a connected graph");
  solver_ = std::make_shared<MultilevelSteinerSolver>(
      MultilevelSteinerSolver::build(
          build_hierarchy(*graph_, options.hierarchy), options.multilevel));
  setup_seconds_ = setup_timer.seconds();
}

LaplacianSolver::LaplacianSolver(Graph g, LaminarHierarchy hierarchy,
                                 const LaplacianSolverOptions& options,
                                 const MultilevelSteinerSolver* reuse)
    : options_(options), graph_(std::make_shared<Graph>(std::move(g))) {
  HICOND_SPAN("solver.setup");
  const Timer setup_timer;
  HICOND_CHECK(graph_->num_vertices() >= 1, "empty graph");
  const Graph& base = hierarchy.levels.empty() ? hierarchy.coarsest
                                               : hierarchy.levels.front().graph;
  HICOND_CHECK(base.identical_to(*graph_),
               "hierarchy base graph does not match the solver's graph");
  HICOND_CHECK(is_connected(*graph_),
               "LaplacianSolver requires a connected graph");
  solver_ = std::make_shared<MultilevelSteinerSolver>(
      reuse != nullptr
          ? MultilevelSteinerSolver::build(std::move(hierarchy),
                                           options.multilevel, *reuse)
          : MultilevelSteinerSolver::build(std::move(hierarchy),
                                           options.multilevel));
  setup_seconds_ = setup_timer.seconds();
}

SolveStats LaplacianSolver::solve(std::span<const double> b,
                                  std::span<double> x) const {
  HICOND_SPAN("solver.solve");
  const Graph& g = *graph_;
  HICOND_CHECK(b.size() == static_cast<std::size_t>(g.num_vertices()),
               "rhs size mismatch");
  HICOND_CHECK(x.size() == b.size(), "x size mismatch");
  auto a = [&g](std::span<const double> in, std::span<double> out) {
    g.laplacian_apply(in, out);
  };
  const Timer solve_timer;
  SolveStats stats =
      flexible_pcg_solve(a, solver_->as_operator(), b, x,
                         {.max_iterations = options_.max_iterations,
                          .rel_tolerance = options_.rel_tolerance,
                          .record_history = true,
                          .project_constant = true});
  solve_seconds_total_ += solve_timer.seconds();
  ++num_solves_;
  last_stats_ = stats;
  return stats;
}

std::vector<SolveStats> LaplacianSolver::solve_batch(std::span<const double> b,
                                                     std::span<double> x,
                                                     int k) const {
  HICOND_SPAN("solver.solve_batch");
  const Graph& g = *graph_;
  HICOND_CHECK(k >= 1, "batched solve needs at least one right-hand side");
  HICOND_CHECK(b.size() == static_cast<std::size_t>(g.num_vertices()) *
                               static_cast<std::size_t>(k),
               "rhs block size mismatch");
  HICOND_CHECK(x.size() == b.size(), "x block size mismatch");
  auto a = [&g](std::span<const double> in, std::span<double> out, int kk) {
    g.laplacian_apply_block(in, out, kk);
  };
  const Timer solve_timer;
  std::vector<SolveStats> stats = batched_flexible_pcg_solve(
      a, solver_->as_block_operator(), b, x, k,
      {.max_iterations = options_.max_iterations,
       .rel_tolerance = options_.rel_tolerance,
       .record_history = true,
       .project_constant = true});
  solve_seconds_total_ += solve_timer.seconds();
  num_solves_ += k;
  last_stats_ = stats.back();
  return stats;
}

obs::SolverReport LaplacianSolver::report(
    const obs::SolverReportOptions& options) const {
  obs::SolverReport r = obs::make_solver_report(*solver_, options);
  r.setup_seconds = setup_seconds_;
  r.solves = num_solves_;
  r.solve_seconds = solve_seconds_total_;
  if (num_solves_ > 0) {
    r.iterations = last_stats_.iterations;
    r.converged = last_stats_.converged;
    r.final_relative_residual = last_stats_.final_relative_residual;
    r.residual_history = last_stats_.residual_history;
  }
  return r;
}

double LaplacianSolver::effective_resistance(vidx u, vidx v) const {
  const vidx n = graph_->num_vertices();
  HICOND_CHECK(u >= 0 && u < n && v >= 0 && v < n, "vertex out of range");
  HICOND_CHECK(u != v, "effective resistance of a vertex with itself is 0");
  std::vector<double> b(static_cast<std::size_t>(n), 0.0);
  b[static_cast<std::size_t>(u)] = 1.0;
  b[static_cast<std::size_t>(v)] = -1.0;
  const std::vector<double> x = solve(b);
  return x[static_cast<std::size_t>(u)] - x[static_cast<std::size_t>(v)];
}

std::vector<double> LaplacianSolver::solve(std::span<const double> b) const {
  std::vector<double> x(b.size(), 0.0);
  const SolveStats stats = solve(b, x);
  if (!stats.converged) {
    throw numeric_error("LaplacianSolver: PCG did not converge (residual " +
                        std::to_string(stats.final_relative_residual) + ")");
  }
  return x;
}

}  // namespace hicond
