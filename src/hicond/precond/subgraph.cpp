#include "hicond/precond/subgraph.hpp"

#include <algorithm>
#include <unordered_map>

#include "hicond/graph/builder.hpp"
#include "hicond/graph/connectivity.hpp"
#include "hicond/tree/low_stretch.hpp"
#include "hicond/tree/mst.hpp"
#include "hicond/tree/tree_splitting.hpp"

namespace hicond {

Graph vaidya_augmented_subgraph(const Graph& a, const Graph& tree,
                                vidx target_subtrees) {
  HICOND_CHECK(a.num_vertices() == tree.num_vertices(),
               "tree vertex count mismatch");
  const vidx n = a.num_vertices();
  if (target_subtrees <= 1 || n <= 2) {
    return tree;
  }
  const vidx cap = std::max<vidx>(
      2, static_cast<vidx>((n + target_subtrees - 1) / target_subtrees));
  const Decomposition split = split_forest_bounded(tree, cap);
  // Heaviest non-tree edge of `a` per adjacent subtree pair.
  std::unordered_map<std::uint64_t, WeightedEdge> best;
  best.reserve(static_cast<std::size_t>(split.num_clusters) * 4);
  for (const auto& e : a.edge_list()) {
    const vidx cu = split.assignment[static_cast<std::size_t>(e.u)];
    const vidx cv = split.assignment[static_cast<std::size_t>(e.v)];
    if (cu == cv) continue;
    if (tree.has_edge(e.u, e.v)) continue;  // tree edges are already in B
    const std::uint64_t key =
        (static_cast<std::uint64_t>(std::min(cu, cv)) << 32) |
        static_cast<std::uint64_t>(std::max(cu, cv));
    auto [it, inserted] = best.try_emplace(key, e);
    if (!inserted && e.weight > it->second.weight) it->second = e;
  }
  GraphBuilder b(n);
  for (const auto& e : tree.edge_list()) b.add_edge(e.u, e.v, e.weight);
  // Deterministic iteration: collect and sort the selected extras. The
  // unordered_map visit order leaks nowhere past the sort below, which is a
  // strict total order (an edge joins exactly one subtree pair, so (u, v)
  // never repeats across values of `best`).
  std::vector<WeightedEdge> extras;
  extras.reserve(best.size());
  // hicond-tidy: allow(ordered-iteration)
  for (const auto& [key, e] : best) extras.push_back(e);
  std::sort(extras.begin(), extras.end(), [](const auto& x, const auto& y) {
    return x.u != y.u ? x.u < y.u : x.v < y.v;
  });
  for (const auto& e : extras) b.add_edge(e.u, e.v, e.weight);
  return b.build();
}

SubgraphPreconditioner SubgraphPreconditioner::build(
    const Graph& a, const SubgraphPrecondOptions& opt) {
  SubgraphPreconditioner p;
  Graph tree = opt.tree_kind == SpanningTreeKind::max_weight
                   ? max_spanning_forest_kruskal(a)
                   : low_stretch_tree_akpw(a, {.seed = opt.seed});
  p.b_ = opt.target_subtrees > 1
             ? vaidya_augmented_subgraph(a, tree, opt.target_subtrees)
             : std::move(tree);
  p.pc_ = std::make_shared<PartialCholesky>(
      PartialCholesky::eliminate_low_degree(p.b_));
  if (p.pc_->core().num_vertices() > 1) {
    HICOND_CHECK(is_connected(p.pc_->core()),
                 "subgraph core must be connected");
    p.core_solver_ = std::make_shared<LaplacianDirectSolver>(p.pc_->core());
  }
  return p;
}

void SubgraphPreconditioner::apply(std::span<const double> r,
                                   std::span<double> z) const {
  HICOND_CHECK(z.size() == r.size(), "size mismatch");
  auto core_solve = [this](std::span<const double> cb) -> std::vector<double> {
    if (core_solver_ == nullptr) {
      return std::vector<double>(cb.size(), 0.0);
    }
    return core_solver_->solve(cb);
  };
  const std::vector<double> x = pc_->solve(r, core_solve);
  std::copy(x.begin(), x.end(), z.begin());
}

LinearOperator SubgraphPreconditioner::as_operator() const {
  // Copy the shared state so the operator outlives this object safely.
  auto pc = pc_;
  auto core = core_solver_;
  return [pc, core](std::span<const double> r, std::span<double> z) {
    auto core_solve = [&core](std::span<const double> cb) {
      if (core == nullptr) return std::vector<double>(cb.size(), 0.0);
      return core->solve(cb);
    };
    const std::vector<double> x = pc->solve(r, core_solve);
    std::copy(x.begin(), x.end(), z.begin());
  };
}

}  // namespace hicond
