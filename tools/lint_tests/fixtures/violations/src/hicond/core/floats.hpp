// Header deliberately missing '#pragma once'.
bool is_zero(double x);
