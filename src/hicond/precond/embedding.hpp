// Combinatorial support bounds via path embeddings (congestion * dilation).
//
// The workhorse inequality behind the splitting Lemma 5.4 and the routing
// argument in Theorem 3.5's proof: if every edge f of A is routed along a
// path p(f) in B, then
//     sigma(A, B) <= max over edges e of B of
//                    (1 / w_B(e)) * sum_{f : e in p(f)} w_A(f) * |p(f)|,
// i.e. weighted congestion times dilation, accumulated per supporting edge.
// For B a spanning tree the routing is unique, which gives a cheap, fully
// combinatorial upper bound on sigma(A, T) to compare against the exact
// spectral value.
#pragma once

#include "hicond/graph/graph.hpp"

namespace hicond {

struct EmbeddingBound {
  double support_bound = 0.0;   ///< the congestion-dilation bound on sigma(A,B)
  double max_dilation = 0.0;    ///< longest routing path (in edges)
  double avg_dilation = 0.0;
  double max_congestion = 0.0;  ///< max over e of load(e) / w(e), load without
                                ///< the dilation factor
};

/// Bound sigma(A, tree) by routing every edge of `a` along its unique tree
/// path. `tree` must be a spanning forest of a's components.
[[nodiscard]] EmbeddingBound tree_embedding_bound(const Graph& a,
                                                  const Graph& tree);

}  // namespace hicond
