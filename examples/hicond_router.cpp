// hicond_router -- sharded frontend over a pool of hicond_serve workers.
//
//   hicond_router [--socket PATH] [--workers N] [--worker-bin PATH]
//                 [--socket-dir DIR] [--cache-bytes N] [--queue N]
//                 [--deadline-ms MS] [--window N] [--vnodes N]
//                 [--replicate-top-k K] [--hot-threshold N]
//                 [--hot-interval N] [--preload GRAPH...]
//
// Speaks the worker NDJSON protocol (docs/SERVING.md) plus the router-only
// `topology` op: stdin/stdout by default, or a unix domain socket with
// --socket. Each graph fingerprint is consistent-hashed onto one of the
// spawned workers; `--worker-bin` defaults to the hicond_serve binary next
// to this executable, and `--socket-dir` to a fresh temporary directory for
// the worker-<i>.sock files. --cache-bytes/--queue/--deadline-ms configure
// each *worker*; --window, --replicate-top-k, --hot-threshold and
// --hot-interval are router policy (docs/SERVING.md, "Sharded serving").
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "hicond/serve/shard/router.hpp"
#include "hicond/serve/snapshot.hpp"

namespace {

using namespace hicond;

int usage() {
  std::fprintf(
      stderr,
      "usage: hicond_router [--socket PATH] [--workers N] [--worker-bin "
      "PATH] [--socket-dir DIR] [--cache-bytes N] [--queue N] "
      "[--deadline-ms MS] [--window N] [--vnodes N] [--replicate-top-k K] "
      "[--hot-threshold N] [--hot-interval N] [--preload GRAPH...]\n");
  return 2;
}

/// Directory component of `path` ("." when there is none).
std::string dirname_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".")
                                    : path.substr(0, slash);
}

}  // namespace

int main(int argc, char** argv) {
  serve::shard::RouterOptions options;
  std::string socket_path;
  std::vector<std::string> preload;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      options.workers = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--worker-bin") == 0 && i + 1 < argc) {
      options.worker.binary = argv[++i];
    } else if (std::strcmp(argv[i], "--socket-dir") == 0 && i + 1 < argc) {
      options.worker.socket_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--cache-bytes") == 0 && i + 1 < argc) {
      options.worker.cache_bytes =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--queue") == 0 && i + 1 < argc) {
      options.worker.queue_capacity =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      options.default_deadline_ms = std::strtod(argv[++i], nullptr);
      options.worker.deadline_ms = options.default_deadline_ms;
    } else if (std::strcmp(argv[i], "--window") == 0 && i + 1 < argc) {
      options.inflight_window = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--vnodes") == 0 && i + 1 < argc) {
      options.vnodes = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--replicate-top-k") == 0 &&
               i + 1 < argc) {
      options.replicate_top_k = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--hot-threshold") == 0 && i + 1 < argc) {
      options.hot_threshold = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--hot-interval") == 0 && i + 1 < argc) {
      options.hot_recompute_interval = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--preload") == 0 && i + 1 < argc) {
      preload.emplace_back(argv[++i]);
    } else {
      return usage();
    }
  }
  if (options.workers < 1 || options.inflight_window < 1 ||
      options.vnodes < 1) {
    return usage();
  }
  if (options.worker.binary.empty()) {
    options.worker.binary = dirname_of(argv[0]) + "/hicond_serve";
  }
  char tmpl[] = "/tmp/hicond-shard-XXXXXX";
  if (options.worker.socket_dir.empty()) {
    if (::mkdtemp(tmpl) == nullptr) {
      std::fprintf(stderr, "hicond_router: mkdtemp failed\n");
      return 1;
    }
    options.worker.socket_dir = tmpl;
  }

  try {
    serve::shard::Router router(options);
    for (const std::string& path : preload) {
      const std::uint64_t fp = router.preload(path);
      std::fprintf(stderr, "preloaded %s: %s\n", path.c_str(),
                   serve::fingerprint_hex(fp).c_str());
    }
    if (!socket_path.empty()) {
      return router.run_unix_socket(socket_path);
    }
    return router.run_stream(/*in_fd=*/0, /*out_fd=*/1);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hicond_router: %s\n", e.what());
    return 1;
  }
}
