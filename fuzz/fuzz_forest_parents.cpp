// Fuzz target: RootedForest::from_parents. Decodes bytes into a parent
// array (including -1 roots, self-parents, cycles, and out-of-range
// indices) plus optional edge weights. Contract: reject with
// invalid_argument_error or accept -- and anything accepted must pass
// validate().

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fuzz_util.hpp"
#include "hicond/tree/rooted_tree.hpp"
#include "hicond/util/common.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  hicond::fuzz::ByteReader r(data, size);
  const auto n = static_cast<std::size_t>(r.u8() % 33);
  const bool with_weights = (r.u8() & 1) != 0;

  std::vector<hicond::vidx> parents(n);
  for (auto& p : parents) {
    // Window [-2, n]: -1 roots, valid parents, and both out-of-range sides.
    p = static_cast<hicond::vidx>(r.u16() % (n + 3)) - 2;
  }
  std::vector<double> weights;
  if (with_weights) {
    weights.resize(n);
    for (auto& w : weights) w = r.f64();
  }

  bool accepted = false;
  hicond::RootedForest f;
  try {
    f = hicond::RootedForest::from_parents(parents, weights);
    accepted = true;
  } catch (const hicond::invalid_argument_error&) {
  }
  if (accepted) f.validate();  // accepted implies fully valid -- never throws
  return 0;
}
