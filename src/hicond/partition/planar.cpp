#include "hicond/partition/planar.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "hicond/graph/builder.hpp"
#include "hicond/graph/connectivity.hpp"
#include "hicond/la/lanczos.hpp"
#include "hicond/obs/metrics.hpp"
#include "hicond/obs/trace.hpp"
#include "hicond/tree/low_stretch.hpp"
#include "hicond/tree/mst.hpp"

namespace hicond {

namespace {

std::uint64_t edge_key(vidx u, vidx v) {
  return (static_cast<std::uint64_t>(std::min(u, v)) << 32) |
         static_cast<std::uint64_t>(std::max(u, v));
}

}  // namespace

Graph cut_to_forest(const Graph& b, vidx* core_size_out, vidx* cut_edges_out) {
  const vidx n = b.num_vertices();
  // Iteratively strip degree-1 vertices; `live_degree` tracks degrees in the
  // remaining graph R.
  std::vector<vidx> live_degree(static_cast<std::size_t>(n));
  std::vector<vidx> stack;
  for (vidx v = 0; v < n; ++v) {
    live_degree[static_cast<std::size_t>(v)] = b.degree(v);
    if (b.degree(v) == 1) stack.push_back(v);
  }
  std::vector<char> stripped(static_cast<std::size_t>(n), 0);
  while (!stack.empty()) {
    const vidx v = stack.back();
    stack.pop_back();
    if (stripped[static_cast<std::size_t>(v)] ||
        live_degree[static_cast<std::size_t>(v)] != 1) {
      continue;
    }
    stripped[static_cast<std::size_t>(v)] = 1;
    live_degree[static_cast<std::size_t>(v)] = 0;
    for (vidx u : b.neighbors(v)) {
      if (!stripped[static_cast<std::size_t>(u)]) {
        if (--live_degree[static_cast<std::size_t>(u)] == 1) {
          stack.push_back(u);
        }
      }
    }
  }
  // Core W: remaining vertices of degree >= 3.
  vidx core_size = 0;
  std::vector<char> in_w(static_cast<std::size_t>(n), 0);
  for (vidx v = 0; v < n; ++v) {
    if (!stripped[static_cast<std::size_t>(v)] &&
        live_degree[static_cast<std::size_t>(v)] >= 3) {
      in_w[static_cast<std::size_t>(v)] = 1;
      ++core_size;
    }
  }
  // Walk every W-W path through degree-2 remainder vertices, cutting the
  // lightest edge on each. Also cut one lightest edge per W-free cycle.
  std::unordered_set<std::uint64_t> visited;
  std::unordered_set<std::uint64_t> cuts;
  auto walk = [&](vidx start, vidx first) {
    // Walk from W-vertex (or cycle entry) `start` through `first`.
    vidx prev = start;
    vidx cur = first;
    WeightedEdge lightest{start, first, b.edge_weight(start, first)};
    visited.insert(edge_key(start, first));
    while (!in_w[static_cast<std::size_t>(cur)] && cur != start) {
      // Remaining degree-2 vertex: exactly one live neighbour != prev.
      vidx next = -1;
      double w_next = 0.0;
      const auto nbrs = b.neighbors(cur);
      const auto ws = b.weights(cur);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (stripped[static_cast<std::size_t>(nbrs[i])]) continue;
        if (nbrs[i] != prev) {
          next = nbrs[i];
          w_next = ws[i];
        }
      }
      if (next == -1) break;  // safety: dead end (should not happen)
      if (w_next < lightest.weight) lightest = {cur, next, w_next};
      visited.insert(edge_key(cur, next));
      prev = cur;
      cur = next;
    }
    cuts.insert(edge_key(lightest.u, lightest.v));
  };
  for (vidx w = 0; w < n; ++w) {
    if (!in_w[static_cast<std::size_t>(w)]) continue;
    for (vidx u : b.neighbors(w)) {
      if (stripped[static_cast<std::size_t>(u)]) continue;
      if (visited.contains(edge_key(w, u))) continue;
      walk(w, u);
    }
  }
  // W-free cycles: any unvisited live edge now lies on a pure cycle.
  for (vidx v = 0; v < n; ++v) {
    if (stripped[static_cast<std::size_t>(v)] ||
        in_w[static_cast<std::size_t>(v)]) {
      continue;
    }
    for (vidx u : b.neighbors(v)) {
      if (stripped[static_cast<std::size_t>(u)]) continue;
      if (visited.contains(edge_key(v, u))) continue;
      walk(v, u);
    }
  }
  // Assemble B minus the cut set.
  GraphBuilder builder(n);
  for (const auto& e : b.edge_list()) {
    if (!cuts.contains(edge_key(e.u, e.v))) {
      builder.add_edge(e.u, e.v, e.weight);
    }
  }
  Graph forest = builder.build();
  HICOND_CHECK(is_forest(forest), "cut_to_forest failed to produce a forest");
  if (core_size_out != nullptr) *core_size_out = core_size;
  if (cut_edges_out != nullptr) {
    *cut_edges_out = static_cast<vidx>(cuts.size());
  }
  return forest;
}

PlanarDecompResult planar_decomposition(const Graph& a,
                                        const PlanarDecompOptions& opt) {
  HICOND_CHECK(opt.off_tree_fraction >= 0.0 && opt.off_tree_fraction <= 1.0,
               "off_tree_fraction must be in [0, 1]");
  HICOND_SPAN("planar.decompose");
  obs::MetricsRegistry::global().counter_add("planar_decomposition.runs");
  PlanarDecompResult result;
  const vidx n = a.num_vertices();
  const Graph tree = opt.tree_kind == SpanningTreeKind::max_weight
                         ? max_spanning_forest_kruskal(a)
                         : low_stretch_tree_akpw(a, {.seed = opt.seed});
  const vidx target = static_cast<vidx>(
      std::ceil(opt.off_tree_fraction * static_cast<double>(n)));
  result.subgraph_b = target > 1 ? vaidya_augmented_subgraph(a, tree, target)
                                 : tree;
  if (opt.measure_k && n >= 3) {
    // k = lambda_max(A, B) with B solved exactly through a subgraph
    // preconditioner built on the already-chosen B.
    PartialCholesky pc = PartialCholesky::eliminate_low_degree(result.subgraph_b);
    std::shared_ptr<LaplacianDirectSolver> core;
    if (pc.core().num_vertices() > 1) {
      core = std::make_shared<LaplacianDirectSolver>(pc.core());
    }
    auto solve_b = [&pc, core](std::span<const double> r,
                               std::span<double> z) {
      auto core_solve = [&core](std::span<const double> cb) {
        if (core == nullptr) return std::vector<double>(cb.size(), 0.0);
        return core->solve(cb);
      };
      const auto x = pc.solve(r, core_solve);
      std::copy(x.begin(), x.end(), z.begin());
    };
    auto apply_a = [&a](std::span<const double> x, std::span<double> y) {
      a.laplacian_apply(x, y);
    };
    result.measured_k =
        lanczos_pencil_extremes(apply_a, solve_b, n, 40, opt.seed).lambda_max;
  }
  result.forest =
      cut_to_forest(result.subgraph_b, &result.core_size, &result.cut_edges);
  result.decomposition = tree_decomposition(result.forest, opt.tree_options);
  HICOND_RUN_VALIDATION(expensive, result.decomposition.validate(a));
  return result;
}

}  // namespace hicond
