#include "hicond/spectral/eigensolver.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "hicond/graph/builder.hpp"
#include "hicond/graph/generators.hpp"
#include "hicond/la/vector_ops.hpp"
#include "hicond/spectral/normalized.hpp"
#include "hicond/spectral/portrait.hpp"

namespace hicond {
namespace {

TEST(Eigensolver, MatchesDenseOnWeightedGrid) {
  const Graph g = gen::grid2d(7, 6, gen::WeightSpec::uniform(1.0, 3.0), 3);
  const int k = 4;
  const EigenPairs pairs = lowest_normalized_eigenpairs(g, k);
  EXPECT_TRUE(pairs.converged);
  const auto dense = normalized_spectrum(g);
  for (int j = 0; j < k; ++j) {
    // dense.values[0] ~ 0 is the trivial pair; ours start at index 1.
    EXPECT_NEAR(pairs.values[static_cast<std::size_t>(j)],
                dense.values[static_cast<std::size_t>(j) + 1], 1e-6)
        << "j=" << j;
  }
}

TEST(Eigensolver, VectorsAreOrthonormalAndNontrivial) {
  const Graph g = gen::random_planar_triangulation(
      60, gen::WeightSpec::uniform(1.0, 2.0), 5);
  const EigenPairs pairs = lowest_normalized_eigenpairs(g, 3);
  EXPECT_TRUE(pairs.converged);
  const auto d = sqrt_volume_unit_vector(g);
  for (std::size_t a = 0; a < pairs.vectors.size(); ++a) {
    EXPECT_NEAR(la::norm2(pairs.vectors[a]), 1.0, 1e-8);
    EXPECT_NEAR(la::dot(pairs.vectors[a], d), 0.0, 1e-8);
    for (std::size_t b = a + 1; b < pairs.vectors.size(); ++b) {
      EXPECT_NEAR(la::dot(pairs.vectors[a], pairs.vectors[b]), 0.0, 1e-8);
    }
  }
}

TEST(Eigensolver, ResidualsSatisfyTolerance) {
  const Graph g = gen::oct_volume(6, 6, 3, {.field_orders = 2.0}, 7);
  EigensolverOptions opt;
  opt.tolerance = 1e-7;
  const EigenPairs pairs = lowest_normalized_eigenpairs(g, 2, opt);
  EXPECT_TRUE(pairs.converged);
  const auto a_hat = normalized_laplacian_operator(g);
  std::vector<double> tmp(static_cast<std::size_t>(g.num_vertices()));
  for (std::size_t j = 0; j < pairs.vectors.size(); ++j) {
    a_hat(pairs.vectors[j], tmp);
    la::axpy(-pairs.values[j], pairs.vectors[j], tmp);
    EXPECT_LE(la::norm2(tmp), 1e-7 * 1.5);
  }
}

TEST(Eigensolver, DetectsPlantedClusterBand) {
  // k cliques, weak bridges: the k-1 lowest non-trivial eigenvalues are
  // tiny, then a spectral gap.
  const vidx kc = 4;
  GraphBuilder b(kc * 6);
  for (vidx c = 0; c < kc; ++c) {
    for (vidx i = 0; i < 6; ++i) {
      for (vidx j = i + 1; j < 6; ++j) b.add_edge(c * 6 + i, c * 6 + j, 1.0);
    }
    b.add_edge(c * 6, ((c + 1) % kc) * 6, 0.01);
  }
  const Graph g = b.build();
  // Ask for the cluster band only (kc - 1 non-trivial small eigenvalues);
  // the next eigenvalue lies in a dense clique-internal band where single
  // vectors are not individually resolvable to tight tolerance.
  const EigenPairs pairs = lowest_normalized_eigenpairs(
      g, static_cast<int>(kc) - 1);
  EXPECT_TRUE(pairs.converged);
  for (int j = 0; j + 1 < static_cast<int>(kc); ++j) {
    EXPECT_LT(pairs.values[static_cast<std::size_t>(j)], 0.05);
  }
  // The Ritz value past the gap is still well separated even without tight
  // per-vector convergence.
  EigensolverOptions loose;
  loose.tolerance = 1e-2;
  const EigenPairs band = lowest_normalized_eigenpairs(
      g, static_cast<int>(kc), loose);
  EXPECT_GT(band.values[static_cast<std::size_t>(kc - 1)], 0.5);
}

TEST(Eigensolver, AlignmentMatchesTheorem41) {
  // Plug the scalable eigenvectors into the Theorem 4.1 alignment check.
  const vidx kc = 3;
  GraphBuilder b(kc * 8);
  for (vidx c = 0; c < kc; ++c) {
    for (vidx i = 0; i < 8; ++i) {
      for (vidx j = i + 1; j < 8; ++j) b.add_edge(c * 8 + i, c * 8 + j, 1.0);
    }
    b.add_edge(c * 8, ((c + 1) % kc) * 8, 0.01);
  }
  const Graph g = b.build();
  Decomposition p;
  p.num_clusters = kc;
  p.assignment.resize(static_cast<std::size_t>(kc * 8));
  for (vidx v = 0; v < kc * 8; ++v) {
    p.assignment[static_cast<std::size_t>(v)] = v / 8;
  }
  const EigenPairs pairs = lowest_normalized_eigenpairs(g, kc - 1);
  for (const auto& vec : pairs.vectors) {
    EXPECT_GT(alignment_with_cluster_space(g, p, vec), 0.99);
  }
}

TEST(Eigensolver, RejectsBadK) {
  const Graph g = gen::path(5);
  EXPECT_THROW((void)lowest_normalized_eigenpairs(g, 0),
               invalid_argument_error);
  EXPECT_THROW((void)lowest_normalized_eigenpairs(g, 5),
               invalid_argument_error);
}

}  // namespace
}  // namespace hicond
