// Incremental construction of CSR graphs from edge streams.
#pragma once

#include <vector>

#include "hicond/graph/graph.hpp"

namespace hicond {

/// Accumulates undirected edges and converts them into a CSR Graph.
/// Parallel edges are merged (weights summed); self-loops and non-positive
/// weights are rejected.
class GraphBuilder {
 public:
  explicit GraphBuilder(vidx n);

  /// Add undirected edge (u, v) with positive weight w.
  void add_edge(vidx u, vidx v, double w);

  /// Pre-allocate storage for `m` undirected edges.
  void reserve(std::size_t m) { edges_.reserve(m); }

  [[nodiscard]] vidx num_vertices() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_buffered_edges() const noexcept {
    return edges_.size();
  }

  /// Produce the CSR graph. The builder can be reused afterwards (it keeps
  /// its buffered edges; call clear() to start over).
  [[nodiscard]] Graph build() const;

  void clear() noexcept { edges_.clear(); }

 private:
  vidx n_;
  std::vector<WeightedEdge> edges_;
};

}  // namespace hicond
