// I/O that must come back clean: the wire helper facade, member functions
// named like syscalls (std::ostream::write and friends), and the pragma
// escape hatch.

namespace hicond::serve::wire {
bool write_all(int fd, const void* data, unsigned long len);
bool write_line(int fd, const char* body);
enum class ReadStatus { data, would_block, eof, error };
class LineBuffer;
ReadStatus read_into(int fd, LineBuffer& buffer);
}  // namespace hicond::serve::wire

extern "C" {
long write(int fd, const void* buf, unsigned long len);
}

struct Stream {
  // Member read/write are ordinary methods, not the raw syscalls.
  Stream& write(const char* data, long len);
  Stream& read(char* data, long len);
};

void through_the_facade(int fd, const char* data, unsigned long len) {
  (void)hicond::serve::wire::write_all(fd, data, len);
  (void)hicond::serve::wire::write_line(fd, data);
}

void member_functions(Stream& s, char* buf) {
  s.write(buf, 8);
  s.read(buf, 8);
}

void suppressed_write(int fd, const char* data, unsigned long len) {
  // hicond-tidy: allow(syscall-discipline)
  write(fd, data, len);
}
