#include "hicond/partition/backends/low_diameter.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <tuple>

#include "hicond/util/common.hpp"
#include "hicond/util/rng.hpp"

namespace hicond::partition {

std::string LowDiameterBackend::options_key(
    const BackendOptions& options) const {
  // seed and beta fully determine the output (satellite guarantee:
  // different seed => different canonical options => different cache key).
  std::string key;
  detail::append_key_int(key, "ld.seed",
                         static_cast<long long>(options.seed));
  detail::append_key_double(key, "ld.beta", options.beta);
  return key;
}

Decomposition LowDiameterBackend::decompose(
    const Graph& g, const BackendOptions& options) const {
  return low_diameter_decomposition(g, options);
}

Decomposition low_diameter_decomposition(const Graph& g,
                                         const BackendOptions& opt) {
  HICOND_CHECK(opt.beta > 0.0, "lowdiam beta must be positive");
  const vidx n = g.num_vertices();
  Decomposition d;
  d.assignment.assign(static_cast<std::size_t>(n), -1);
  d.num_clusters = 0;
  if (n == 0) return d;

  // delta_v ~ Exp(beta), a pure function of (seed, v): unit(counter_u64)
  // lands in [0, 1), so 1 - u is in (0, 1] and -log1p(-u) is finite.
  std::vector<double> shift(static_cast<std::size_t>(n));
  for (vidx v = 0; v < n; ++v) {
    const double u = u64_to_unit_double(
        counter_u64(opt.seed, static_cast<std::uint64_t>(v)));
    shift[static_cast<std::size_t>(v)] = -std::log1p(-u) / opt.beta;
  }

  // Multi-source Dijkstra on unit hop lengths: source v enters at key
  // -delta_v; settling v from an entry pushed by neighbour u adopts u's
  // owner, which keeps every owner region connected. Lexicographic
  // (key, owner, vertex) ordering makes every tie deterministic.
  using HeapEntry = std::tuple<double, vidx, vidx>;  // (key, owner, vertex)
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap;
  for (vidx v = 0; v < n; ++v) {
    heap.emplace(-shift[static_cast<std::size_t>(v)], v, v);
  }
  std::vector<vidx> owner(static_cast<std::size_t>(n), -1);
  while (!heap.empty()) {
    const auto [key, o, v] = heap.top();
    heap.pop();
    if (owner[static_cast<std::size_t>(v)] >= 0) continue;  // settled
    owner[static_cast<std::size_t>(v)] = o;
    for (const vidx u : g.neighbors(v)) {
      if (owner[static_cast<std::size_t>(u)] < 0) {
        heap.emplace(key + 1.0, o, u);
      }
    }
  }

  // Compact owner ids in ascending owner-vertex order (deterministic).
  std::vector<vidx> remap(static_cast<std::size_t>(n), -1);
  vidx m = 0;
  for (vidx v = 0; v < n; ++v) {
    const vidx o = owner[static_cast<std::size_t>(v)];
    HICOND_CHECK(o >= 0, "low-diameter search left a vertex unassigned");
    if (remap[static_cast<std::size_t>(o)] < 0) {
      // Owners are discovered in vertex order only if every owner owns
      // itself, which holds: v can lose ownership of v only to an owner
      // with a strictly smaller start key, in which case o never appears.
      remap[static_cast<std::size_t>(o)] = -2;  // mark used, number below
    }
  }
  for (vidx v = 0; v < n; ++v) {
    if (remap[static_cast<std::size_t>(v)] == -2) {
      remap[static_cast<std::size_t>(v)] = m++;
    }
  }
  for (vidx v = 0; v < n; ++v) {
    d.assignment[static_cast<std::size_t>(v)] =
        remap[static_cast<std::size_t>(owner[static_cast<std::size_t>(v)])];
  }
  d.num_clusters = m;
  return d;
}

}  // namespace hicond::partition
