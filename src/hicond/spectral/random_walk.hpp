// Random walks and distribution mixtures (Section 4's motivation).
//
// P = I - A D^{-1} is the transition matrix of the lazy-free weighted random
// walk; the probability that a walk from i sits at j after t steps is
// (P^t e_i)_j. Individual distributions cost a matvec per step; arbitrary
// mixtures sum_v w_v P^t e_v = P^t w cost the same t matvecs regardless of
// how many walks are mixed -- the observation that motivates the global
// spectral portrait of Theorem 4.1.
#pragma once

#include <vector>

#include "hicond/graph/graph.hpp"
#include "hicond/partition/decomposition.hpp"

namespace hicond {

/// One step: y = P x = x - A (D^{-1} x). Columns of P sum to 1, so the total
/// probability mass of x is conserved.
void random_walk_step(const Graph& g, std::span<const double> x,
                      std::span<double> y);

/// P^t e_source.
[[nodiscard]] std::vector<double> random_walk_distribution(const Graph& g,
                                                           vidx source, int t);

/// P^t w for an arbitrary mixture w.
[[nodiscard]] std::vector<double> mixture_walk(const Graph& g,
                                               std::vector<double> w, int t);

/// Fraction of the walk's probability mass that sits inside the source's
/// cluster after t steps -- the "trapping" effect of high-conductance,
/// weakly-connected clusters.
[[nodiscard]] double trapped_mass(const Graph& g, const Decomposition& p,
                                  vidx source, int t);

}  // namespace hicond
