#!/usr/bin/env python3
"""Project-specific lint rules for hicond.

Rules (each failure prints `path:line: [rule] message` and exits nonzero):

  omp-schedule        Every OpenMP worksharing loop (`#pragma omp for`,
                      `#pragma omp parallel for`) must carry an explicit
                      `schedule(...)` clause.  Implicit schedules make run
                      times (and TSan interleavings) depend on the compiler
                      default.

  omp-funnel          Raw `#pragma omp parallel` regions are only allowed in
                      util/parallel.hpp.  Everything else must go through
                      `parallel_region()` / `parallel_for()` so fork/join
                      happens-before annotations for TSan stay in one place.

  omp-determinism     `#pragma omp atomic`, `#pragma omp critical` and
                      OpenMP `reduction(...)` clauses are forbidden outside
                      util/parallel.hpp.  Their accumulation order depends on
                      the runtime schedule, which breaks the project's
                      run-to-run determinism policy; use owner-computes
                      partitioning or the fixed-block reductions in
                      util/parallel.hpp (parallel_sum, parallel_any).

  no-std-rand         `std::rand` / `srand` / bare `rand(` are forbidden;
                      use util/rng.hpp (counter-based, deterministic,
                      thread-safe).

  check-coverage      Every non-util .cpp under src/hicond must use at least
                      one of HICOND_CHECK / HICOND_VALIDATE /
                      HICOND_RUN_VALIDATION / HICOND_ASSERT — public entry
                      points validate their inputs.

  include-hygiene     Headers start with `#pragma once` (after an optional
                      leading comment block); a module's .cpp includes its
                      own header first.

  chrono-timing       Raw `std::chrono` / `#include <chrono>` timing is only
                      allowed in util/timer.* and the observability layer
                      (src/hicond/obs/).  Everything else must time through
                      util/timer (Timer, time_best_of) or obs spans so
                      measurements share one clock and show up in traces.
                      tests/ are exempt (sleep_for in timer tests).

  float-equal         `==` / `!=` against a floating-point literal is
                      forbidden in library, bench, example and fuzz code;
                      use util/float_eq.hpp (exact_zero, exactly_equal,
                      approx_equal).  Genuinely exact comparisons carry a
                      `// float-eq: exact` annotation.  tests/ are exempt
                      (gtest macros do their own comparison plumbing).

  certify-coverage    Every public header in src/hicond/certify/ must have a
                      sibling .cpp that uses the HICOND_CHECK family — the
                      certificate oracle is the layer of last resort and must
                      validate its own inputs.

  serve-coverage      Every public header in src/hicond/serve/ must be
                      #included by at least one translation unit under
                      tests/ — the serving subsystem is the outermost API
                      boundary and ships nothing untested.

  backend-coverage    Every public header in src/hicond/partition/backends/
                      must be #included by at least one translation unit
                      under tests/, and every builtin backend name listed
                      in kBuiltinBackendNames (backend.cpp) must appear in
                      the property suite under tests/prop/ — backends are
                      interchangeable only if each one is driven through
                      the certify oracle.

  syscall-discipline  Direct read/write/readv/writev/pread/pwrite/send/
                      recv/sendto/recvfrom/sendmsg/recvmsg calls are only
                      allowed in serve/wire.{hpp,cpp} and
                      util/unique_fd.hpp.  Raw I/O syscalls can return
                      short counts or EINTR; everything else goes through
                      the wire helpers (write_all, write_line, read_into,
                      drain_nonblocking), which retry correctly.  tests/
                      are exempt (tests drive sockets directly to provoke
                      edge cases).  This is the regex mirror of the
                      hicond-tidy AST check of the same name; suppress a
                      deliberate use with `// hicond-tidy:
                      allow(syscall-discipline)` on the same or previous
                      line.

  fd-close            Raw `close()` / `::close()` calls are only allowed
                      in util/unique_fd.hpp and serve/wire.{hpp,cpp}.
                      Descriptors are owned by hicond::unique_fd, whose
                      reset() is the single close site — a raw close
                      either double-closes an owned fd or marks a leak on
                      every early-return path.  tests/ are exempt.
                      Regex mirror of the hicond-tidy fd-ownership check;
                      `// hicond-tidy: allow(fd-ownership)` (or
                      allow(fd-close)) suppresses it.

Run: python3 tools/check_project_rules.py [root]
"""
from __future__ import annotations

import pathlib
import re
import sys

PRAGMA_OMP = re.compile(r"#\s*pragma\s+omp\s+(.*)")
CHECK_MACROS = re.compile(
    r"HICOND_CHECK|HICOND_VALIDATE|HICOND_RUN_VALIDATION|HICOND_ASSERT"
)
RAND_USE = re.compile(r"std::rand\b|\bsrand\s*\(|(?<![\w:])rand\s*\(")

# Files allowed to contain raw `#pragma omp parallel` (the funnel itself).
OMP_FUNNEL_ALLOWED = {"src/hicond/util/parallel.hpp"}

# util/ and obs/ are infrastructure, not an API boundary; exempt from
# check-coverage.
CHECK_EXEMPT_DIRS = ("src/hicond/util/", "src/hicond/obs/")

# Only these may touch std::chrono directly; see the chrono-timing rule.
CHRONO_ALLOWED_PREFIXES = ("src/hicond/util/timer.", "src/hicond/obs/",
                           "tests/")
CHRONO_USE = re.compile(r"std::chrono\b|#\s*include\s*<chrono>")

# `== 0.0`, `1.5 !=`, `!= 1e-9`, ... on either side of the operator.
FLOAT_LITERAL = r"[-+]?(?:\d+\.\d*|\.\d+|\d+[eE][-+]?\d+)"
FLOAT_EQ = re.compile(
    rf"(?:==|!=)\s*{FLOAT_LITERAL}|{FLOAT_LITERAL}\s*(?:==|!=)"
)
# The approved helper and the per-line escape hatch; see util/float_eq.hpp.
FLOAT_EQ_EXEMPT_FILES = {"src/hicond/util/float_eq.hpp"}
FLOAT_EQ_ANNOTATION = "float-eq: exact"

# Raw I/O syscalls and close() are funneled through these three files; see
# the syscall-discipline and fd-close rules (and docs/STATIC_ANALYSIS.md).
WIRE_ALLOWED_FILES = {
    "src/hicond/serve/wire.cpp",
    "src/hicond/serve/wire.hpp",
    "src/hicond/util/unique_fd.hpp",
}
# A free-function call: optionally `::`-qualified, but not a member access
# (`.read(`, `->read(`) and not a suffix of a longer identifier.  `::` is
# accepted so `::read(` and explicit global qualification are caught.
_RAW_IO_NAMES = (
    "read|write|readv|writev|pread|pwrite|"
    "send|recv|sendto|recvfrom|sendmsg|recvmsg"
)
RAW_IO_SYSCALL = re.compile(
    rf"(?:(?<![\w.>:])|(?<=::))(?:{_RAW_IO_NAMES})\s*\("
)
RAW_CLOSE = re.compile(r"(?:(?<![\w.>:])|(?<=::))close\s*\(")


def strip_comments(line: str) -> str:
    """Best-effort removal of // comments and string literals for token rules."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    return line.split("//", 1)[0]


def logical_source_lines(text: str):
    """Yield (start_lineno, joined) with backslash continuations joined.

    Continuations are joined unconditionally, BEFORE any pattern matching:
    a directive split as `#pragma \\` + `omp parallel ...` has no single
    physical line matching PRAGMA_OMP, so matching first and joining second
    (the old behaviour) let multi-line pragmas evade every omp-* rule.
    """
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        start = i
        full = lines[i].rstrip()
        while full.endswith("\\") and i + 1 < len(lines):
            i += 1
            full = full[:-1].rstrip() + " " + lines[i].strip()
        yield start + 1, full
        i += 1


def logical_source_lines_tight(text: str):
    """Yield (start_lineno, joined) with continuations joined WITHOUT a space.

    logical_source_lines() joins with a space, which is right for pragma
    token rules but wrong for identifier rules: a call spliced mid-token
    (`::clo\\` + `se(fd)`) reassembles to `::close(fd)` only under a
    no-space join.  Token rules (syscall-discipline, fd-close) match on
    this variant so backslash splices cannot hide a name.
    """
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        start = i
        full = lines[i].rstrip()
        while full.endswith("\\") and i + 1 < len(lines):
            i += 1
            full = full[:-1].rstrip() + lines[i].strip()
        yield start + 1, full
        i += 1


def tidy_allowed(lines: list[str], lineno: int, rules: tuple[str, ...]) -> bool:
    """True if a `hicond-tidy: allow(<rule>)` marker covers this line.

    Mirrors the C++ tool's suppression scope: the marker counts on the
    flagged line itself or on the physical line directly above it.
    """
    for rule in rules:
        marker = f"hicond-tidy: allow({rule})"
        for idx in (lineno - 1, lineno - 2):
            if 0 <= idx < len(lines) and marker in lines[idx]:
                return True
    return False


def logical_pragma_lines(text: str):
    """Yield (lineno, pragma_clause) for every logical `#pragma omp` line."""
    for lineno, full in logical_source_lines(text):
        m = PRAGMA_OMP.search(full)
        if m:
            yield lineno, m.group(1)


def main() -> int:
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    src = root / "src" / "hicond"
    if not src.is_dir():
        print(f"error: {src} not found", file=sys.stderr)
        return 2

    scan_dirs = [src]
    for extra in ("tests", "bench", "examples", "fuzz"):
        d = root / extra
        if d.is_dir():
            scan_dirs.append(d)

    errors: list[str] = []

    def err(path: pathlib.Path, line: int, rule: str, msg: str) -> None:
        errors.append(f"{path.relative_to(root)}:{line}: [{rule}] {msg}")

    for d in scan_dirs:
        for path in sorted(d.rglob("*")):
            if path.suffix not in (".cpp", ".hpp", ".h", ".cc"):
                continue
            rel = path.relative_to(root).as_posix()
            text = path.read_text(encoding="utf-8")
            lines = text.splitlines()

            # --- OpenMP rules -------------------------------------------
            for lineno, clause in logical_pragma_lines(text):
                tokens = clause.split()
                is_worksharing_for = "for" in tokens
                if is_worksharing_for and "schedule(" not in clause.replace(
                    " ", ""
                ):
                    err(path, lineno, "omp-schedule",
                        "OpenMP worksharing loop without an explicit "
                        "schedule(...) clause")
                if tokens and tokens[0] == "parallel":
                    if rel not in OMP_FUNNEL_ALLOWED:
                        err(path, lineno, "omp-funnel",
                            "raw '#pragma omp parallel' outside "
                            "util/parallel.hpp; use parallel_region() / "
                            "parallel_for()")
                if rel not in OMP_FUNNEL_ALLOWED and (
                    "atomic" in tokens
                    or "critical" in tokens
                    or "reduction(" in clause.replace(" ", "")
                ):
                    err(path, lineno, "omp-determinism",
                        "schedule-ordered accumulation (atomic/critical/"
                        "reduction) outside util/parallel.hpp; use "
                        "owner-computes writes or parallel_sum/parallel_any")

            # --- no-std-rand --------------------------------------------
            for lineno, line in enumerate(lines, 1):
                stripped = strip_comments(line)
                if RAND_USE.search(stripped):
                    err(path, lineno, "no-std-rand",
                        "std::rand/srand/rand() is forbidden; use "
                        "util/rng.hpp")

            # --- float-equal --------------------------------------------
            if (
                rel not in FLOAT_EQ_EXEMPT_FILES
                and not rel.startswith("tests/")
            ):
                for lineno, line in enumerate(lines, 1):
                    if FLOAT_EQ_ANNOTATION in line:
                        continue
                    if FLOAT_EQ.search(strip_comments(line)):
                        err(path, lineno, "float-equal",
                            "==/!= against a floating-point literal; use "
                            "util/float_eq.hpp (exact_zero, exactly_equal, "
                            "approx_equal) or annotate '// float-eq: exact'")

            # --- chrono-timing ------------------------------------------
            if not any(rel.startswith(p) for p in CHRONO_ALLOWED_PREFIXES):
                for lineno, line in enumerate(lines, 1):
                    if CHRONO_USE.search(strip_comments(line)):
                        err(path, lineno, "chrono-timing",
                            "raw std::chrono outside util/timer and obs/; "
                            "use util/timer (Timer, time_best_of) or "
                            "HICOND_SPAN")

            # --- syscall-discipline / fd-close --------------------------
            # Regex mirror of the hicond-tidy AST checks: raw I/O syscalls
            # and close() outside the wire/unique_fd funnel.  Matched on
            # no-space-joined logical lines so a backslash splice through
            # the middle of an identifier cannot hide it.
            if rel not in WIRE_ALLOWED_FILES and not rel.startswith("tests/"):
                for lineno, tight in logical_source_lines_tight(text):
                    code = strip_comments(tight)
                    if RAW_IO_SYSCALL.search(code) and not tidy_allowed(
                        lines, lineno, ("syscall-discipline",)
                    ):
                        err(path, lineno, "syscall-discipline",
                            "raw I/O syscall outside serve/wire and "
                            "util/unique_fd.hpp; use wire::write_all/"
                            "write_line/read_into/drain_nonblocking")
                    if RAW_CLOSE.search(code) and not tidy_allowed(
                        lines, lineno, ("fd-close", "fd-ownership")
                    ):
                        err(path, lineno, "fd-close",
                            "raw close() outside util/unique_fd.hpp; own "
                            "descriptors with hicond::unique_fd (reset() "
                            "is the single close site)")

            # --- check-coverage (library .cpp only) ---------------------
            if (
                path.suffix == ".cpp"
                and rel.startswith("src/hicond/")
                and not any(rel.startswith(p) for p in CHECK_EXEMPT_DIRS)
                and not CHECK_MACROS.search(text)
            ):
                err(path, 1, "check-coverage",
                    "no HICOND_CHECK/HICOND_VALIDATE in this translation "
                    "unit; public entry points must validate inputs")

            # --- certify-coverage ---------------------------------------
            if path.suffix == ".hpp" and rel.startswith(
                "src/hicond/certify/"
            ):
                sibling = path.with_suffix(".cpp")
                if not sibling.exists():
                    err(path, 1, "certify-coverage",
                        "certify/ header without a sibling .cpp; the oracle "
                        "layer must have a checked implementation")
                elif not CHECK_MACROS.search(sibling.read_text(
                        encoding="utf-8")):
                    err(path, 1, "certify-coverage",
                        f"{sibling.relative_to(root)} has no "
                        "HICOND_CHECK/HICOND_VALIDATE; the certificate "
                        "oracle must validate its inputs")

            # --- include-hygiene ----------------------------------------
            if path.suffix in (".hpp", ".h") and rel.startswith("src/"):
                pragma_line = None
                for lineno, line in enumerate(lines, 1):
                    code = line.strip()
                    if code.startswith("#pragma once"):
                        pragma_line = lineno
                        break
                    if code and not code.startswith("//"):
                        break
                if pragma_line is None:
                    err(path, 1, "include-hygiene",
                        "header must start with '#pragma once' (after an "
                        "optional leading comment block)")
            if path.suffix == ".cpp" and rel.startswith("src/hicond/"):
                own_header = path.with_suffix(".hpp")
                if own_header.exists():
                    expected = own_header.relative_to(root / "src").as_posix()
                    first_include = None
                    for lineno, line in enumerate(lines, 1):
                        m = re.match(r'\s*#\s*include\s+[<"]([^">]+)[">]',
                                     line)
                        if m:
                            first_include = (lineno, m.group(1))
                            break
                    if first_include is None or first_include[1] != expected:
                        err(path, first_include[0] if first_include else 1,
                            "include-hygiene",
                            f'first include must be its own header '
                            f'"{expected}"')

    # --- serve-coverage (cross-file) ------------------------------------
    # The serving subsystem is the outermost API boundary, and dynamic/ is
    # its mutation path: every public header under src/hicond/serve/ and
    # src/hicond/dynamic/ must be exercised by at least one test
    # translation unit (direct #include under tests/).
    tests_dir = root / "tests"
    covered_dirs = [src / "serve", src / "dynamic"]
    if tests_dir.is_dir():
        test_includes: set[str] = set()
        for test_path in tests_dir.rglob("*.cpp"):
            for m in re.finditer(r'#\s*include\s+"([^"]+)"',
                                 test_path.read_text(encoding="utf-8")):
                test_includes.add(m.group(1))
        for covered in covered_dirs:
            if not covered.is_dir():
                continue
            for header in sorted(covered.rglob("*.hpp")):
                include_name = header.relative_to(root / "src").as_posix()
                if include_name not in test_includes:
                    err(header, 1, "serve-coverage",
                        f'"{include_name}" is not included by any test '
                        "under tests/; every serve/ and dynamic/ header "
                        "needs test coverage")

    # --- backend-coverage (cross-file) ----------------------------------
    # Partitioner backends are interchangeable implementations behind one
    # interface; interchangeability is only real if every backend is
    # exercised.  Two obligations: (a) each header under
    # src/hicond/partition/backends/ is #included by a test TU, and
    # (b) each builtin backend name (the kBuiltinBackendNames roster in
    # backend.cpp) appears in the property suite under tests/prop/, which
    # drives all registered backends through the certify oracle.
    backends_dir = src / "partition" / "backends"
    if tests_dir.is_dir() and backends_dir.is_dir():
        for header in sorted(backends_dir.rglob("*.hpp")):
            include_name = header.relative_to(root / "src").as_posix()
            if include_name not in test_includes:
                err(header, 1, "backend-coverage",
                    f'"{include_name}" is not included by any test under '
                    "tests/; every partitioner backend header needs test "
                    "coverage")
        registry_cpp = backends_dir / "backend.cpp"
        roster_match = re.search(
            r"kBuiltinBackendNames\[\]\s*=\s*\{([^}]*)\}",
            registry_cpp.read_text(encoding="utf-8"))
        if roster_match is None:
            err(registry_cpp, 1, "backend-coverage",
                "could not locate the kBuiltinBackendNames roster; the "
                "backend-coverage rule parses it to enforce prop-suite "
                "coverage")
        else:
            roster = re.findall(r'"([^"]+)"', roster_match.group(1))
            prop_text = "".join(
                p.read_text(encoding="utf-8")
                for p in sorted((tests_dir / "prop").rglob("*.cpp")))
            for name in roster:
                if name not in prop_text:
                    err(registry_cpp, 1, "backend-coverage",
                        f'builtin backend "{name}" never appears in '
                        "tests/prop/; the property suite must drive every "
                        "registered backend through the certify oracle")

    if errors:
        print("\n".join(errors))
        print(f"\ncheck_project_rules: {len(errors)} violation(s)",
              file=sys.stderr)
        return 1
    print("check_project_rules: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
