// The spectral portrait of a (phi, gamma) decomposition (Section 4).
//
// Plants k well-connected clusters joined by weak bridges, computes the
// decomposition-aware spectral quantities of Theorem 4.1 (how closely the
// low eigenvectors of the normalized Laplacian hug the cluster-indicator
// space Range(D^{1/2} R)), and shows the random-walk intuition: probability
// mass started inside a cluster stays trapped for a long time.
//
//   ./spectral_clusters [clusters] [cluster_size] [bridge_weight]
#include <cstdio>
#include <cstdlib>

#include "hicond/graph/builder.hpp"
#include "hicond/spectral/portrait.hpp"
#include "hicond/spectral/random_walk.hpp"

int main(int argc, char** argv) {
  using namespace hicond;
  const vidx k = argc > 1 ? static_cast<vidx>(std::atoi(argv[1])) : 5;
  const vidx size = argc > 2 ? static_cast<vidx>(std::atoi(argv[2])) : 8;
  const double bridge = argc > 3 ? std::atof(argv[3]) : 0.02;

  // Planted clusters: unit cliques in a ring, joined by light edges.
  GraphBuilder b(k * size);
  for (vidx c = 0; c < k; ++c) {
    for (vidx i = 0; i < size; ++i) {
      for (vidx j = i + 1; j < size; ++j) {
        b.add_edge(c * size + i, c * size + j, 1.0);
      }
    }
    b.add_edge(c * size, ((c + 1) % k) * size, bridge);
  }
  const Graph g = b.build();
  Decomposition p;
  p.num_clusters = k;
  p.assignment.resize(static_cast<std::size_t>(k * size));
  for (vidx v = 0; v < k * size; ++v) {
    p.assignment[static_cast<std::size_t>(v)] = v / size;
  }
  std::printf("planted graph: %d cliques of %d, bridge weight %.3f\n", k,
              size, bridge);

  const DecompositionStats stats = evaluate_decomposition(g, p);
  std::printf("decomposition: phi >= %.3f, gamma >= %.3f\n",
              stats.min_phi_lower, stats.min_gamma);

  // Theorem 4.1 portrait: alignment of each eigenvector with the cluster
  // space vs the theorem's lower bound.
  const SpectralPortrait portrait = spectral_portrait(g, p);
  std::printf("\nsupport factor 3(1 + 2/(gamma phi^2)) = %.2f\n",
              portrait.support_factor);
  std::printf("%4s %12s %16s %14s\n", "i", "lambda_i", "alignment^2",
              "bound");
  const std::size_t show = std::min<std::size_t>(portrait.rows.size(),
                                                 static_cast<std::size_t>(2 * k));
  for (std::size_t i = 0; i < show; ++i) {
    const auto& row = portrait.rows[i];
    std::printf("%4zu %12.6f %16.6f %14.6f%s\n", i, row.lambda,
                row.alignment_sq, row.bound,
                i < static_cast<std::size_t>(k) ? "  <- cluster band" : "");
  }

  // Random-walk trapping (the Section 4 motivation).
  std::printf("\nrandom-walk trapping from vertex 1 (cluster 0):\n");
  std::printf("%6s %16s\n", "steps", "mass in cluster");
  for (int t : {0, 1, 2, 5, 10, 50, 200, 1000}) {
    std::printf("%6d %16.4f\n", t, trapped_mass(g, p, 1, t));
  }
  std::printf("\n(stationary mass per cluster = %.4f)\n", 1.0 / k);
  return 0;
}
