// Parallelism entered through the funnel API (stubbed), plus an
// explicitly annotated raw pragma: no findings.

namespace hicond {
template <typename Fn>
void parallel_for(int n, Fn&& fn) {
  for (int i = 0; i < n; ++i) fn(i);
}
}  // namespace hicond

void scale(double* x, int n) {
  hicond::parallel_for(n, [&](int i) { x[i] *= 2.0; });
}

void annotated(double* x, int n) {
  // hicond-tidy: allow(funnel-discipline)
#pragma omp parallel for schedule(static)
  for (int i = 0; i < n; ++i) x[i] += 1.0;
}
