#include "hicond/tree/low_stretch.hpp"

#include <gtest/gtest.h>

#include "hicond/graph/connectivity.hpp"
#include "hicond/graph/generators.hpp"
#include "hicond/tree/mst.hpp"

namespace hicond {
namespace {

TEST(LowStretch, SpansConnectedGraphs) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Graph g = gen::grid2d(8, 8, gen::WeightSpec::uniform(1.0, 4.0), seed);
    const Graph t = low_stretch_tree_akpw(g, {.seed = seed});
    EXPECT_TRUE(is_tree(t)) << "seed " << seed;
    EXPECT_EQ(t.num_vertices(), g.num_vertices());
  }
}

TEST(LowStretch, TreeInputReturnsSameTree) {
  const Graph g = gen::random_tree(50, gen::WeightSpec::uniform(1.0, 5.0), 2);
  const Graph t = low_stretch_tree_akpw(g);
  EXPECT_EQ(t.num_edges(), g.num_edges());
  for (const auto& e : g.edge_list()) EXPECT_TRUE(t.has_edge(e.u, e.v));
}

TEST(LowStretch, EdgesComeFromInputGraph) {
  const Graph g = gen::grid3d(4, 4, 2, gen::WeightSpec::uniform(1.0, 3.0), 4);
  const Graph t = low_stretch_tree_akpw(g);
  for (const auto& e : t.edge_list()) {
    EXPECT_DOUBLE_EQ(g.edge_weight(e.u, e.v), e.weight);
  }
}

TEST(AverageStretch, TreeAgainstItselfIsOne) {
  const Graph g = gen::random_tree(60, gen::WeightSpec::uniform(1.0, 4.0), 3);
  EXPECT_NEAR(average_stretch(g, g), 1.0, 1e-12);
}

TEST(AverageStretch, CycleKnownValue) {
  // Unit cycle of n: tree = path (drop one edge); the dropped edge has
  // stretch n-1, tree edges have stretch 1.
  const vidx n = 10;
  const Graph g = gen::cycle(n);
  std::vector<WeightedEdge> path_edges;
  for (const auto& e : g.edge_list()) {
    if (!(e.u == 0 && e.v == n - 1)) path_edges.push_back(e);
  }
  const Graph t(n, path_edges);
  const double expected =
      (static_cast<double>(n - 1) + static_cast<double>(n - 1)) /
      static_cast<double>(n);
  EXPECT_NEAR(average_stretch(g, t), expected, 1e-12);
}

TEST(AverageStretch, RejectsNonSpanningTree) {
  const Graph g = gen::grid2d(3, 3);
  std::vector<WeightedEdge> partial{{0, 1, 1.0}, {1, 2, 1.0}};
  const Graph t(9, partial);
  EXPECT_THROW((void)average_stretch(g, t), invalid_argument_error);
}

TEST(LowStretch, BeatsOrMatchesMstOnHeavyCycleFamilies) {
  // On graphs engineered against greedy weight choices, the AKPW-style tree
  // should not be catastrophically worse than the max-weight tree.
  double ls_total = 0.0;
  double mst_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Graph g = gen::random_planar_triangulation(
        120, gen::WeightSpec::lognormal(0.0, 1.5), seed);
    ls_total += average_stretch(g, low_stretch_tree_akpw(g, {.seed = seed}));
    mst_total += average_stretch(g, max_spanning_forest_kruskal(g));
  }
  EXPECT_LT(ls_total, mst_total * 3.0);
}

TEST(LowStretch, RejectsBadOptions) {
  const Graph g = gen::path(4);
  EXPECT_THROW((void)low_stretch_tree_akpw(g, {.class_ratio = 1.0}),
               invalid_argument_error);
  EXPECT_THROW((void)low_stretch_tree_akpw(g, {.bfs_radius = 0}),
               invalid_argument_error);
}

}  // namespace
}  // namespace hicond
