// Scalable extreme eigensolver for normalized Laplacians.
//
// Section 4 characterizes (phi, gamma) decompositions through the lowest
// eigenvectors of A_hat = D^{-1/2} A D^{-1/2}; using them in practice needs
// those eigenvectors at scale. This module computes the k smallest
// non-trivial eigenpairs by block inverse iteration: each step solves
// Laplacian systems with the multilevel Steiner solver (the paper's own
// preconditioner powering the paper's own spectral machinery), followed by
// Rayleigh-Ritz on the block.
//
// Inverse iteration on A_hat: A_hat = D^{-1/2} A D^{-1/2}, so
// A_hat^+ y = D^{1/2} A^+ D^{1/2} y on the complement of the null vector
// D^{1/2} 1 -- one multilevel solve per column per step.
#pragma once

#include "hicond/graph/graph.hpp"
#include "hicond/la/dense_eigen.hpp"
#include "hicond/solver.hpp"

namespace hicond {

struct EigensolverOptions {
  int block_extra = 4;     ///< extra basis vectors beyond k (guards clusters)
  int max_iterations = 60;
  double tolerance = 1e-8;  ///< residual ||A_hat x - lambda x|| per pair
  std::uint64_t seed = 17;
  LaplacianSolverOptions solver{};
};

struct EigenPairs {
  std::vector<double> values;        ///< ascending, excludes the trivial 0
  std::vector<std::vector<double>> vectors;  ///< orthonormal, one per value
  int iterations = 0;
  bool converged = false;
};

/// The k smallest non-trivial eigenpairs of the normalized Laplacian of a
/// connected graph. Requires 1 <= k <= n - 1.
[[nodiscard]] EigenPairs lowest_normalized_eigenpairs(
    const Graph& g, int k, const EigensolverOptions& options = {});

}  // namespace hicond
