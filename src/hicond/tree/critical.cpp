#include "hicond/tree/critical.hpp"

#include <algorithm>

#include "hicond/util/parallel.hpp"

namespace hicond {

std::vector<char> critical_vertices(const RootedForest& forest, int m) {
  HICOND_CHECK(m >= 2, "criticality parameter must be >= 2");
  const vidx n = forest.num_vertices();
  std::vector<char> critical(static_cast<std::size_t>(n), 0);
  auto bucket = [m](vidx size) {
    return (static_cast<long long>(size) + m - 1) / m;
  };
  // The ceiling test reads only precomputed subtree sizes and each vertex
  // writes only its own flag (owner-computes).
  parallel_for(static_cast<std::size_t>(n), [&](std::size_t i) {
    const auto v = static_cast<vidx>(i);
    if (forest.is_leaf(v)) return;
    for (vidx w : forest.children(v)) {
      if (bucket(forest.subtree_size(v)) <= bucket(forest.subtree_size(w))) {
        return;
      }
    }
    critical[i] = 1;
  });
  // Roots of non-trivial components anchor the decomposition even when the
  // ceiling condition ties (e.g. a 3-vertex path); mark them critical.
  for (vidx r : forest.roots()) {
    if (!forest.is_leaf(r)) critical[static_cast<std::size_t>(r)] = 1;
  }
  return critical;
}

std::vector<Bridge> bridge_decomposition(const Graph& tree,
                                         std::span<const char> critical) {
  const vidx n = tree.num_vertices();
  HICOND_CHECK(critical.size() == static_cast<std::size_t>(n),
               "critical flag size mismatch");
  std::vector<vidx> component(static_cast<std::size_t>(n), -1);
  std::vector<Bridge> bridges;
  std::vector<vidx> stack;
  for (vidx s = 0; s < n; ++s) {
    if (critical[static_cast<std::size_t>(s)] ||
        component[static_cast<std::size_t>(s)] != -1) {
      continue;
    }
    const vidx id = static_cast<vidx>(bridges.size());
    bridges.emplace_back();
    Bridge& b = bridges.back();
    component[static_cast<std::size_t>(s)] = id;
    stack.push_back(s);
    while (!stack.empty()) {
      const vidx v = stack.back();
      stack.pop_back();
      b.interior.push_back(v);
      for (vidx u : tree.neighbors(v)) {
        if (critical[static_cast<std::size_t>(u)]) {
          b.attachments.push_back(u);
        } else if (component[static_cast<std::size_t>(u)] == -1) {
          component[static_cast<std::size_t>(u)] = id;
          stack.push_back(u);
        }
      }
    }
    std::sort(b.interior.begin(), b.interior.end());
    std::sort(b.attachments.begin(), b.attachments.end());
    b.attachments.erase(
        std::unique(b.attachments.begin(), b.attachments.end()),
        b.attachments.end());
  }
  return bridges;
}

std::vector<Bridge> bridge_decomposition(const Graph& tree,
                                         std::span<const char> critical,
                                         const RootedForest& forest) {
  const vidx n = tree.num_vertices();
  HICOND_CHECK(critical.size() == static_cast<std::size_t>(n),
               "critical flag size mismatch");
  HICOND_CHECK(forest.num_vertices() == n, "forest size mismatch");
  // Each non-critical vertex chases its parent pointer while the parent is
  // also non-critical; O(log depth) doubling rounds leave rep[v] at the
  // topmost vertex of v's bridge piece, which acts as the representative.
  std::vector<vidx> rep(static_cast<std::size_t>(n), -1);
  std::vector<vidx> rep_next(static_cast<std::size_t>(n), -1);
  parallel_for(static_cast<std::size_t>(n), [&](std::size_t i) {
    const auto v = static_cast<vidx>(i);
    if (critical[i]) return;
    const vidx p = forest.parent(v);
    rep[i] = (p >= 0 && !critical[static_cast<std::size_t>(p)]) ? p : v;
  });
  bool changed = n > 0;
  while (changed) {
    parallel_for(static_cast<std::size_t>(n), [&](std::size_t i) {
      rep_next[i] =
          rep[i] >= 0 ? rep[static_cast<std::size_t>(rep[i])] : vidx{-1};
    });
    changed = parallel_any(static_cast<std::size_t>(n), [&](std::size_t i) {
      return rep_next[i] != rep[i];
    });
    rep.swap(rep_next);
  }
  // Serial id pass over vertices in ascending order: pieces are numbered by
  // their minimum interior vertex, matching the BFS overload exactly, and
  // the interior lists come out already sorted.
  std::vector<vidx> id_of_top(static_cast<std::size_t>(n), -1);
  vidx num_bridges = 0;
  for (vidx v = 0; v < n; ++v) {
    const vidx top = rep[static_cast<std::size_t>(v)];
    if (top < 0) continue;
    if (id_of_top[static_cast<std::size_t>(top)] == -1) {
      id_of_top[static_cast<std::size_t>(top)] = num_bridges++;
    }
  }
  std::vector<Bridge> bridges(static_cast<std::size_t>(num_bridges));
  for (vidx v = 0; v < n; ++v) {
    const vidx top = rep[static_cast<std::size_t>(v)];
    if (top < 0) continue;
    bridges[static_cast<std::size_t>(
                id_of_top[static_cast<std::size_t>(top)])]
        .interior.push_back(v);
  }
  // Attachment gathering touches only the bridge's own rows.
  parallel_for_interleaved(bridges.size(), [&](std::size_t i) {
    Bridge& b = bridges[i];
    for (const vidx v : b.interior) {
      for (const vidx u : tree.neighbors(v)) {
        if (critical[static_cast<std::size_t>(u)]) b.attachments.push_back(u);
      }
    }
    std::sort(b.attachments.begin(), b.attachments.end());
    b.attachments.erase(
        std::unique(b.attachments.begin(), b.attachments.end()),
        b.attachments.end());
  });
  return bridges;
}

}  // namespace hicond
