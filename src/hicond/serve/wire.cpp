#include "hicond/serve/wire.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <vector>

#include "hicond/util/common.hpp"

namespace hicond::serve::wire {

namespace {

/// Block until `fd` is writable again (EINTR-tolerant); false on poll error.
bool wait_writable(int fd) {
  pollfd p{fd, POLLOUT, 0};
  for (;;) {
    const int rc = ::poll(&p, 1, -1);
    if (rc >= 0) {
      return true;
    }
    if (errno != EINTR) {
      return false;
    }
  }
}

}  // namespace

bool write_all(int fd, const void* data, std::size_t len) {
  HICOND_CHECK(fd >= 0, "write_all needs a valid file descriptor");
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t sent = ::write(fd, p, len);
    if (sent < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!wait_writable(fd)) {
          return false;
        }
        continue;
      }
      return false;
    }
    p += sent;
    len -= static_cast<std::size_t>(sent);
  }
  return true;
}

bool write_all(int fd, std::span<const std::string_view> parts) {
  HICOND_CHECK(fd >= 0, "write_all needs a valid file descriptor");
  std::vector<iovec> iov;
  iov.reserve(parts.size());
  for (const std::string_view part : parts) {
    if (!part.empty()) {
      // iovec's base is non-const by historic accident; writev never writes
      // through it.
      iov.push_back(iovec{const_cast<char*>(part.data()), part.size()});
    }
  }
  std::size_t first = 0;  // first iovec with unsent bytes
  while (first < iov.size()) {
    const ssize_t sent = ::writev(fd, iov.data() + first,
                                  static_cast<int>(iov.size() - first));
    if (sent < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!wait_writable(fd)) {
          return false;
        }
        continue;
      }
      return false;
    }
    // Consume `sent` bytes across the remaining iovecs (a short writev may
    // stop mid-part).
    std::size_t remaining = static_cast<std::size_t>(sent);
    while (remaining > 0 && first < iov.size()) {
      if (remaining >= iov[first].iov_len) {
        remaining -= iov[first].iov_len;
        ++first;
      } else {
        iov[first].iov_base =
            static_cast<char*>(iov[first].iov_base) + remaining;
        iov[first].iov_len -= remaining;
        remaining = 0;
      }
    }
  }
  return true;
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) {
    return false;
  }
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool drain_nonblocking(int fd, std::string& buffer) {
  HICOND_CHECK(fd >= 0, "drain_nonblocking needs a valid file descriptor");
  std::size_t sent_total = 0;
  bool ok = true;
  while (sent_total < buffer.size()) {
    const ssize_t sent = ::write(fd, buffer.data() + sent_total,
                                 buffer.size() - sent_total);
    if (sent < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;  // kernel buffer full; keep the suffix for the next round
      }
      ok = false;
      break;
    }
    sent_total += static_cast<std::size_t>(sent);
  }
  buffer.erase(0, sent_total);
  return ok;
}

ReadStatus read_into(int fd, LineBuffer& buffer) {
  HICOND_CHECK(fd >= 0, "read_into needs a valid file descriptor");
  char chunk[65536];
  for (;;) {
    const ssize_t got = ::read(fd, chunk, sizeof(chunk));
    if (got > 0) {
      buffer.append(chunk, static_cast<std::size_t>(got));
      return ReadStatus::data;
    }
    if (got == 0) {
      return ReadStatus::eof;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return ReadStatus::would_block;
    }
    return ReadStatus::error;
  }
}

void LineBuffer::append(const char* data, std::size_t len) {
  // Compact consumed bytes before growing; amortized O(1) per byte.
  if (start_ > 0 && (start_ >= data_.size() || start_ > 4096)) {
    data_.erase(0, start_);
    start_ = 0;
  }
  data_.append(data, len);
}

bool LineBuffer::next_line(std::string& line) {
  const std::size_t nl = data_.find('\n', start_);
  if (nl == std::string::npos) {
    return false;
  }
  line.assign(data_, start_, nl - start_);
  start_ = nl + 1;
  return true;
}

}  // namespace hicond::serve::wire
