# Empty compiler generated dependencies file for tab_topdown_vs_bottomup.
# This may be replaced when dependencies are built.
