// Tree decomposition into isolated high-conductance clusters (Theorem 2.1).
//
// The paper shows trees admit a [1/2, 6/5] decomposition computable with
// linear work in O(log n) parallel time: compute the 3-critical vertices,
// give each its own cluster, and resolve each O(1)-size 3-bridge locally --
// non-critical vertices either form small clusters of their own (so they are
// never singletons) or are attached to an adjacent critical vertex's
// cluster.
//
// Our bridge resolution follows the paper's architecture, but instead of
// transcribing the (figure-bound) case list it scores every feasible local
// choice by the *exact* closure conductance it creates -- bridges are O(1)
// sized, so this costs O(1) per bridge and is immune to case-analysis
// ambiguity. The guarantees are validated empirically and exactly by the
// test suite and by bench/tab_tree_decomposition.
#pragma once

#include "hicond/graph/graph.hpp"
#include "hicond/partition/decomposition.hpp"

namespace hicond {

struct TreeDecompOptions {
  /// A bridge pair {u1, u2} keeps its own cluster when the internal edge
  /// carries at least `pair_slack * min(boundary1, boundary2)` weight; the
  /// closure conductance of such a pair is >= pair_slack/(pair_slack + 2).
  double pair_slack = 2.0;
  /// Closures up to this size are brute-forced when scoring candidates.
  vidx exact_limit = 18;
};

/// Decompose a forest per Theorem 2.1. Components with at most 3 vertices
/// become single clusters (as in the paper).
[[nodiscard]] Decomposition tree_decomposition(
    const Graph& forest, const TreeDecompOptions& options = {});

}  // namespace hicond
