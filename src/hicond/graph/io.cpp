#include "hicond/graph/io.hpp"

#include <fstream>
#include <sstream>

#include "hicond/graph/builder.hpp"
#include "hicond/util/common.hpp"

namespace hicond {

void write_graph(std::ostream& out, const Graph& g) {
  HICOND_CHECK(out.good(), "write_graph: output stream not writable");
  out << g.num_vertices() << ' ' << g.num_edges() << '\n';
  out.precision(17);
  for (vidx u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    const auto ws = g.weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (u < nbrs[i]) out << u << ' ' << nbrs[i] << ' ' << ws[i] << '\n';
    }
  }
}

void write_graph_file(const std::string& path, const Graph& g) {
  std::ofstream out(path);
  HICOND_CHECK(out.good(), "cannot open file for writing: " + path);
  write_graph(out, g);
  HICOND_CHECK(out.good(), "write failed: " + path);
}

Graph read_graph(std::istream& in) {
  std::string line;
  auto next_content_line = [&](std::string& out_line) {
    while (std::getline(in, out_line)) {
      if (out_line.empty() || out_line[0] == '%' || out_line[0] == '#') {
        continue;
      }
      return true;
    }
    return false;
  };
  HICOND_CHECK(next_content_line(line), "empty graph stream");
  std::istringstream header(line);
  long long n = 0;
  long long m = 0;
  HICOND_CHECK(static_cast<bool>(header >> n >> m), "bad graph header");
  HICOND_CHECK(n >= 0 && m >= 0, "negative counts in header");
  GraphBuilder b(static_cast<vidx>(n));
  b.reserve(static_cast<std::size_t>(m));
  for (long long i = 0; i < m; ++i) {
    HICOND_CHECK(next_content_line(line), "truncated edge list");
    std::istringstream edge(line);
    long long u = 0;
    long long v = 0;
    double w = 0.0;
    HICOND_CHECK(static_cast<bool>(edge >> u >> v >> w), "bad edge line");
    b.add_edge(static_cast<vidx>(u), static_cast<vidx>(v), w);
  }
  return b.build();
}

Graph read_graph_file(const std::string& path) {
  std::ifstream in(path);
  HICOND_CHECK(in.good(), "cannot open file for reading: " + path);
  return read_graph(in);
}

void write_metis(std::ostream& out, const Graph& g) {
  HICOND_CHECK(out.good(), "write_metis: output stream not writable");
  out << g.num_vertices() << ' ' << g.num_edges() << " 001\n";
  out.precision(17);
  for (vidx v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    const auto ws = g.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (i > 0) out << ' ';
      out << (nbrs[i] + 1) << ' ' << ws[i];
    }
    out << '\n';
  }
}

void write_metis_file(const std::string& path, const Graph& g) {
  std::ofstream out(path);
  HICOND_CHECK(out.good(), "cannot open file for writing: " + path);
  write_metis(out, g);
  HICOND_CHECK(out.good(), "write failed: " + path);
}

Graph read_metis(std::istream& in) {
  std::string line;
  // Comment lines are skipped everywhere; empty lines are only meaningful
  // as adjacency rows (a vertex with no neighbours), not before the header.
  auto next_line = [&](std::string& out_line, bool allow_empty) {
    while (std::getline(in, out_line)) {
      if (!out_line.empty() && out_line[0] == '%') continue;
      if (out_line.empty() && !allow_empty) continue;
      return true;
    }
    return false;
  };
  auto next_content_line = [&](std::string& out_line) {
    return next_line(out_line, /*allow_empty=*/true);
  };
  HICOND_CHECK(next_line(line, /*allow_empty=*/false), "empty METIS stream");
  std::istringstream header(line);
  long long n = 0;
  long long m = 0;
  std::string fmt = "0";
  long long ncon = 0;
  header >> n >> m;
  HICOND_CHECK(n >= 0 && m >= 0, "bad METIS header");
  // assign() instead of operator=(const char*): sidesteps a GCC 12
  // -Wrestrict false positive in the inlined string-replace path.
  if (!(header >> fmt)) fmt.assign(1, '0');
  if (!(header >> ncon)) ncon = 0;
  const bool has_edge_weights = !fmt.empty() && fmt.back() == '1';
  const bool has_vertex_weights =
      fmt.size() >= 2 && fmt[fmt.size() - 2] == '1';
  const long long vweights =
      has_vertex_weights ? std::max<long long>(ncon, 1) : 0;

  GraphBuilder b(static_cast<vidx>(n));
  b.reserve(static_cast<std::size_t>(m));
  for (long long v = 0; v < n; ++v) {
    HICOND_CHECK(next_content_line(line), "truncated METIS adjacency");
    std::istringstream row(line);
    for (long long s = 0; s < vweights; ++s) {
      double skip = 0.0;
      HICOND_CHECK(static_cast<bool>(row >> skip), "bad vertex weight");
    }
    long long u = 0;
    while (row >> u) {
      HICOND_CHECK(u >= 1 && u <= n, "METIS neighbour out of range");
      double w = 1.0;
      if (has_edge_weights) {
        HICOND_CHECK(static_cast<bool>(row >> w), "missing edge weight");
      }
      // Each undirected edge appears in both adjacency lists; keep one copy.
      if (v < u - 1) b.add_edge(static_cast<vidx>(v), static_cast<vidx>(u - 1), w);
    }
  }
  Graph g = b.build();
  HICOND_CHECK(g.num_edges() == m, "METIS edge count mismatch");
  return g;
}

Graph read_metis_file(const std::string& path) {
  std::ifstream in(path);
  HICOND_CHECK(in.good(), "cannot open file for reading: " + path);
  return read_metis(in);
}

}  // namespace hicond
