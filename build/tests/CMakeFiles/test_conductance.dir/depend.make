# Empty dependencies file for test_conductance.
# This may be replaced when dependencies are built.
