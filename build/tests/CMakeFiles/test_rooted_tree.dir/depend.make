# Empty dependencies file for test_rooted_tree.
# This may be replaced when dependencies are built.
