// Miller-Peng-Xu low-diameter decomposition via exponential random shifts
// (arXiv:1307.3692; see PAPERS.md), as a PartitionerBackend.
//
// Every vertex u draws a shift delta_u ~ Exp(beta) and vertex v joins the
// cluster of the u maximizing delta_u - dist(u, v); equivalently, a
// multi-source shortest-path computation where source u starts at time
// -delta_u. The MPX guarantee: each cluster has (hop) diameter
// O(log n / beta) and the expected fraction of cut edges is O(beta).
// Clusters are connected by construction -- a vertex is always settled
// from an already-settled neighbour with the same owner, so owner regions
// are unions of shortest-path trees.
//
// Implementation notes:
//  * Shifts come from the project's counter RNG (util/rng.hpp):
//    delta_v = -log1p(-u) / beta with u = unit(counter_u64(seed, v)), so
//    the draw is a pure function of (seed, v) -- deterministic at every
//    thread count, per the determinism policy the canonical options carry
//    the seed for.
//  * Distances are hop counts (unit edge lengths): MPX is stated for
//    unweighted graphs, and hop radius is what bounds the closure diameter
//    of the clusters. Edge weights still shape the hierarchy through the
//    quotient weights, just not the cluster shapes.
//  * The search is a serial Dijkstra over (key, owner, vertex)-ordered
//    heap entries with lazy deletion; ties break lexicographically, so the
//    assignment is bitwise reproducible.
//  * BackendOptions::max_cluster_size is not consumed: cluster size is
//    controlled by beta (larger beta => smaller shifts => more, smaller
//    clusters).
#pragma once

#include "hicond/partition/backends/backend.hpp"

namespace hicond::partition {

class LowDiameterBackend final : public PartitionerBackend {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "lowdiam";
  }
  [[nodiscard]] std::string options_key(
      const BackendOptions& options) const override;
  [[nodiscard]] Decomposition decompose(
      const Graph& g, const BackendOptions& options) const override;
};

/// The construction behind LowDiameterBackend::decompose, exposed for
/// direct tests. Uses options.seed and options.beta; ignores the rest.
[[nodiscard]] Decomposition low_diameter_decomposition(
    const Graph& g, const BackendOptions& options);

}  // namespace hicond::partition
