#include "hicond/core/refine.hpp"

#define HICOND_CHECK(x) ((void)(x))

int refine(int x) {
  HICOND_CHECK(x >= 0);
  return x + 1;
}

void zero(double* xs, int n) {
#pragma omp for schedule(static)
  for (int i = 0; i < n; ++i) xs[i] = 0.5 * xs[i];
}
