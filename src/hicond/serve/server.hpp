// Newline-delimited-JSON solver service.
//
// ServerCore is the transport-independent request engine: submit() parses
// and admits one request line into a bounded queue (returning an immediate
// shed response when the queue is full -- explicit backpressure instead of
// unbounded buffering), step() executes the oldest admitted request, and
// the transports (stdio loop, unix socket; examples/hicond_serve.cpp) do
// nothing but move lines. Deadlines are checked at phase boundaries: on
// dequeue, and again between hierarchy setup and the solve, so an expired
// request is shed before it burns solver time. A shutdown request drains
// everything already admitted, then stops the loop -- exit is clean, never
// mid-request.
//
// Protocol (one JSON object per line, documented in docs/SERVING.md):
//   {"op":"load","path":P}                 read a snapshot/text graph file
//   {"op":"solve","graph":FP,...}          single RHS through the cache
//   {"op":"batch_solve","graph":FP,...}    k RHS, blocked (serve/batch.hpp)
//   {"op":"update","graph":FP,"updates":[...]}  apply an edge-update batch:
//       registers the mutated graph under its new fingerprint and installs
//       its solver by local hierarchy repair (dynamic/repair.hpp) when
//       possible, cold build otherwise; "mode":"rebuild" forces the cold
//       path. Response carries new_graph, repaired, clusters_touched.
//   {"op":"stats"}                         cache + queue counters
//   {"op":"shutdown"}                      drain and stop
// Every response is a single JSON object with "id" echoed and "ok"; errors
// carry {"ok":false,"error":CODE,"message":...} and are themselves valid
// JSON -- malformed input never kills the server.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "hicond/serve/cache.hpp"
#include "hicond/util/timer.hpp"

namespace hicond::serve {

struct ServerOptions {
  std::size_t cache_bytes = std::size_t{256} << 20;  ///< hierarchy cache
  std::size_t queue_capacity = 64;  ///< admitted-but-unprocessed requests
  /// Applied when a request carries no "deadline_ms"; <= 0 disables.
  double default_deadline_ms = 0.0;
  /// Solver options used when a request has no "options" object.
  LaplacianSolverOptions solver{};
};

/// Concurrency contract: ServerCore itself is single-threaded -- submit()
/// and step() must be called from one thread (the transport loop), which is
/// why queue_/graphs_/counters carry no lock. The one component shared with
/// other threads, the hierarchy cache, synchronizes internally behind
/// annotated locks (serve/cache.hpp, util/thread_annotations.hpp); clang
/// builds verify that discipline with -Werror=thread-safety.
class ServerCore {
 public:
  explicit ServerCore(const ServerOptions& options = {});

  /// Parse and admit one request line. Returns an immediate response only
  /// when the request cannot be queued (parse error, unknown op, queue
  /// full); otherwise the response comes from the matching step() call.
  [[nodiscard]] std::optional<std::string> submit(const std::string& line);

  /// Execute the oldest queued request; nullopt when the queue is empty.
  [[nodiscard]] std::optional<std::string> step();

  /// True once a shutdown request has been executed (the transport should
  /// stop reading; queued work admitted before shutdown has been drained).
  [[nodiscard]] bool shutting_down() const noexcept { return shutdown_; }

  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return queue_.size();
  }
  [[nodiscard]] const HierarchyCache& cache() const noexcept {
    return cache_;
  }

 private:
  struct Pending {
    std::string raw;
    Timer since_submit;       ///< deadline clock starts at admission
    double deadline_ms = 0.0; ///< <= 0: none
    std::int64_t id = -1;     ///< echoed back; -1 when absent
  };

  std::string process(const Pending& request);

  ServerOptions options_;
  HierarchyCache cache_;
  std::deque<Pending> queue_;
  std::map<std::uint64_t, std::shared_ptr<const Graph>> graphs_;
  bool shutdown_ = false;
  std::int64_t requests_ = 0;
  std::int64_t shed_ = 0;
};

/// Blocking NDJSON loop over an istream/ostream pair (the stdio transport):
/// reads lines, submits, drains responses eagerly, returns on EOF or after
/// a shutdown request completed. Returns 0 on clean exit.
int serve_stream(ServerCore& core, std::istream& in, std::ostream& out);

/// Same protocol over a unix domain socket: binds `path`, accepts one
/// connection at a time, serves each until its EOF, and returns after a
/// shutdown request (removing the socket file). Returns 0 on clean exit.
int serve_unix_socket(ServerCore& core, const std::string& path);

}  // namespace hicond::serve
