file(REMOVE_RECURSE
  "CMakeFiles/tab_planar_decomposition.dir/tab_planar_decomposition.cpp.o"
  "CMakeFiles/tab_planar_decomposition.dir/tab_planar_decomposition.cpp.o.d"
  "tab_planar_decomposition"
  "tab_planar_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_planar_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
