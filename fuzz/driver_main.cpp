// Standalone driver for the fuzz harnesses, used when the toolchain has no
// libFuzzer runtime (the GCC-only CI image). Two modes:
//
//   fuzz_replay_<target> <file-or-dir>...
//       Replay every corpus input through LLVMFuzzerTestOneInput, in sorted
//       order for reproducibility. This is what the ctest registration runs.
//
//   fuzz_replay_<target> --mutate <seconds> <seed> <file-or-dir>...
//       Time-budgeted random mutation of the corpus (bit flips, byte
//       inserts/erases, truncation) -- a poor cousin of coverage guidance,
//       but enough to shake out shallow parsing crashes in a CI smoke job.
//
// Any uncaught exception or sanitizer report aborts the process, which the
// caller (ctest or the CI fuzz job) treats as a failure.

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "hicond/util/rng.hpp"
#include "hicond/util/timer.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

using Bytes = std::vector<std::uint8_t>;

Bytes read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "fuzz driver: cannot open " << path << "\n";
    std::exit(2);
  }
  return Bytes(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
}

/// Expand file and directory arguments into a sorted list of input files.
std::vector<std::filesystem::path> collect_inputs(
    const std::vector<std::string>& args) {
  std::vector<std::filesystem::path> files;
  for (const auto& arg : args) {
    const std::filesystem::path p(arg);
    if (std::filesystem::is_directory(p)) {
      for (const auto& entry : std::filesystem::directory_iterator(p)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
    } else if (std::filesystem::is_regular_file(p)) {
      files.push_back(p);
    } else {
      std::cerr << "fuzz driver: no such input " << p << "\n";
      std::exit(2);
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

void mutate(Bytes& input, hicond::Rng& rng) {
  const auto op = rng.uniform_index(4);
  if (input.empty() || op == 1) {
    // Insert a byte (also the only move available on an empty input).
    const auto at = rng.uniform_index(input.size() + 1);
    input.insert(input.begin() + static_cast<std::ptrdiff_t>(at),
                 static_cast<std::uint8_t>(rng.next_u64()));
    return;
  }
  const auto at = rng.uniform_index(input.size());
  switch (op) {
    case 0:  // flip a bit
      input[at] ^= static_cast<std::uint8_t>(1U << rng.uniform_index(8));
      break;
    case 2:  // erase a byte
      input.erase(input.begin() + static_cast<std::ptrdiff_t>(at));
      break;
    default:  // truncate
      input.resize(at);
      break;
  }
}

int run_mutation(double budget_seconds, std::uint64_t seed,
                 const std::vector<std::filesystem::path>& files) {
  std::vector<Bytes> corpus;
  corpus.reserve(files.size());
  for (const auto& f : files) corpus.push_back(read_file(f));
  if (corpus.empty()) corpus.emplace_back();  // mutate from the empty input

  hicond::Rng rng(seed);
  hicond::Timer timer;
  std::uint64_t execs = 0;
  while (timer.seconds() < budget_seconds) {
    Bytes input = corpus[rng.uniform_index(corpus.size())];
    const auto rounds = 1 + rng.uniform_index(8);
    for (std::uint64_t r = 0; r < rounds; ++r) mutate(input, rng);
    LLVMFuzzerTestOneInput(input.data(), input.size());
    ++execs;
  }
  std::cout << "fuzz driver: " << execs << " mutated execs in "
            << timer.seconds() << " s (seed " << seed << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  double mutate_seconds = -1.0;
  std::uint64_t seed = 0;
  if (args.size() >= 3 && args[0] == "--mutate") {
    mutate_seconds = std::stod(args[1]);
    seed = std::stoull(args[2]);
    args.erase(args.begin(), args.begin() + 3);
  }
  if (args.empty()) {
    std::cerr << "usage: " << (argc > 0 ? argv[0] : "fuzz_replay")
              << " [--mutate <seconds> <seed>] <file-or-dir>...\n";
    return 2;
  }

  const auto files = collect_inputs(args);
  for (const auto& f : files) {
    const Bytes input = read_file(f);
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }
  std::cout << "fuzz driver: replayed " << files.size() << " inputs\n";
  if (mutate_seconds > 0.0) return run_mutation(mutate_seconds, seed, files);
  return 0;
}
