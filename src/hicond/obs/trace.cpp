#include "hicond/obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <vector>

#include "hicond/obs/json.hpp"
#include "hicond/util/common.hpp"
#include "hicond/util/thread_annotations.hpp"

namespace hicond::obs {

namespace {

/// Per-thread span capacity. At 24 bytes per event this is ~1.5 MB per
/// recording thread; the oldest events are overwritten on wrap (counted in
/// `dropped`).
constexpr std::size_t kRingCapacity = 1 << 16;

struct TraceEvent {
  const char* name;
  std::int64_t start_ns;
  std::int64_t dur_ns;
};

/// One thread's span storage. Written only by the owning thread; read by
/// the exporter outside parallel regions (ordered by the parallel_region
/// join annotations).
struct ThreadTraceBuffer {
  explicit ThreadTraceBuffer(int tid_in) : tid(tid_in) {
    events.resize(kRingCapacity);
  }

  int tid;
  std::vector<TraceEvent> events;
  std::size_t head = 0;   ///< next write slot
  std::size_t count = 0;  ///< live events (<= kRingCapacity)
  std::size_t dropped = 0;
};

std::atomic<bool> g_enabled{false};

/// Registry of every thread's buffer. Buffers are heap-allocated once per
/// thread and intentionally never freed (bounded by the thread count), so
/// registry pointers stay valid after short-lived threads exit.
Mutex g_registry_mu;
std::vector<ThreadTraceBuffer*>& registry() HICOND_REQUIRES(g_registry_mu) {
  static std::vector<ThreadTraceBuffer*> r;
  return r;
}

ThreadTraceBuffer& local_buffer() {
  thread_local ThreadTraceBuffer* tl = nullptr;
  if (tl == nullptr) {
    const MutexLock lock(g_registry_mu);
    tl = new ThreadTraceBuffer(static_cast<int>(registry().size()));
    registry().push_back(tl);
  }
  return *tl;
}

std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

void set_trace_enabled(bool enabled) noexcept {
  // Touch the epoch before the first span so trace_now_ns() stays cheap.
  (void)trace_epoch();
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool trace_enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

std::int64_t trace_now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - trace_epoch())
      .count();
}

void detail::record_span(const char* name, std::int64_t start_ns,
                         std::int64_t end_ns) noexcept {
  ThreadTraceBuffer& buf = local_buffer();
  buf.events[buf.head] = {name, start_ns, end_ns - start_ns};
  buf.head = (buf.head + 1) % kRingCapacity;
  if (buf.count < kRingCapacity) {
    ++buf.count;
  } else {
    ++buf.dropped;
  }
}

void clear_trace() {
  const MutexLock lock(g_registry_mu);
  for (ThreadTraceBuffer* buf : registry()) {
    buf->head = 0;
    buf->count = 0;
    buf->dropped = 0;
  }
}

std::size_t trace_event_count() {
  const MutexLock lock(g_registry_mu);
  std::size_t total = 0;
  for (const ThreadTraceBuffer* buf : registry()) total += buf->count;
  return total;
}

std::size_t trace_dropped_count() {
  const MutexLock lock(g_registry_mu);
  std::size_t total = 0;
  for (const ThreadTraceBuffer* buf : registry()) total += buf->dropped;
  return total;
}

std::string export_chrome_trace() {
  struct Flat {
    TraceEvent event;
    int tid;
  };
  std::vector<Flat> all;
  {
    const MutexLock lock(g_registry_mu);
    for (const ThreadTraceBuffer* buf : registry()) {
      // Oldest event first: when the ring wrapped, the head slot is oldest.
      const std::size_t first =
          buf->count == kRingCapacity ? buf->head : 0;
      for (std::size_t i = 0; i < buf->count; ++i) {
        all.push_back(
            {buf->events[(first + i) % kRingCapacity], buf->tid});
      }
    }
  }
  std::sort(all.begin(), all.end(), [](const Flat& a, const Flat& b) {
    return a.event.start_ns < b.event.start_ns;
  });

  JsonWriter w;
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();
  for (const Flat& f : all) {
    w.begin_object();
    w.kv("name", f.event.name);
    w.kv("cat", "hicond");
    w.kv("ph", "X");
    w.kv("ts", static_cast<double>(f.event.start_ns) / 1e3);
    w.kv("dur", static_cast<double>(f.event.dur_ns) / 1e3);
    w.kv("pid", 0);
    w.kv("tid", f.tid);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace hicond::obs
