// TAB-HIER -- the recursive hierarchy of Steiner preconditioners
// (Section 1.1: "The recursive computation of [phi, rho] decompositions
// leads to a laminar decomposition and a corresponding hierarchy of Steiner
// preconditioners").
//
// For growing problem sizes we report the hierarchy shape (levels, operator
// complexity) and PCG iteration counts for: plain CG, Jacobi, two-level
// Steiner (exact quotient solve), and the multilevel V-cycle. The paper's
// construction-cost story also shows up in the build-time columns.
#include <cstdio>

#include "hicond/graph/generators.hpp"
#include "hicond/la/cg.hpp"
#include "hicond/la/vector_ops.hpp"
#include "hicond/partition/fixed_degree.hpp"
#include "hicond/partition/hierarchy.hpp"
#include "hicond/precond/multilevel.hpp"
#include "hicond/precond/steiner.hpp"
#include "hicond/util/rng.hpp"
#include "hicond/util/timer.hpp"

namespace {

using namespace hicond;

int iterations(const Graph& g, const LinearOperator* m, bool flexible) {
  const vidx n = g.num_vertices();
  Rng rng(17);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  la::remove_mean(b);
  auto a = [&g](std::span<const double> x, std::span<double> y) {
    g.laplacian_apply(x, y);
  };
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  const CgOptions opt{.max_iterations = 20000, .rel_tolerance = 1e-8,
                      .project_constant = true};
  SolveStats stats;
  if (m == nullptr) {
    stats = cg_solve(a, b, x, opt);
  } else if (flexible) {
    stats = flexible_pcg_solve(a, *m, b, x, opt);
  } else {
    stats = pcg_solve(a, *m, b, x, opt);
  }
  return stats.converged ? stats.iterations : -1;
}

}  // namespace

int main() {
  std::printf("# TAB-HIER: multilevel Steiner hierarchy scaling "
              "(OCT-like 3D volumes)\n");
  std::printf("%6s %8s %7s %9s %10s %8s %8s %10s %10s %11s\n", "side", "n",
              "levels", "op_cmplx", "build_ms", "cg", "jacobi", "steiner2",
              "steinerML", "ml_ms");
  for (vidx side : {8, 12, 16, 20, 26}) {
    const Graph g = gen::oct_volume(side, side, side,
                                    {.field_orders = 3.0}, 7);
    Timer t_build;
    const LaminarHierarchy h = build_hierarchy(
        g, {.contraction = {.max_cluster_size = 4}, .coarsest_size = 100});
    const MultilevelSteinerSolver ml = MultilevelSteinerSolver::build(h);
    const double build_ms = t_build.seconds() * 1e3;

    const auto fd = fixed_degree_decomposition(g, {.max_cluster_size = 4});
    const SteinerPreconditioner two =
        SteinerPreconditioner::build(g, fd.decomposition);

    auto jacobi_op = LinearOperator(
        [&g](std::span<const double> r, std::span<double> z) {
          for (std::size_t i = 0; i < r.size(); ++i) {
            z[i] = g.vol(static_cast<vidx>(i)) > 0.0
                       ? r[i] / g.vol(static_cast<vidx>(i))
                       : 0.0;
          }
        });
    const LinearOperator two_op = two.as_operator();
    const LinearOperator ml_op = ml.as_operator();

    Timer t_ml;
    const int it_ml = iterations(g, &ml_op, true);
    const double ml_ms = t_ml.seconds() * 1e3;
    std::printf("%6d %8d %7d %9.3f %10.1f %8d %8d %10d %10d %11.1f\n", side,
                g.num_vertices(), ml.num_levels(), ml.operator_complexity(),
                build_ms, iterations(g, nullptr, false),
                iterations(g, &jacobi_op, false),
                iterations(g, &two_op, false), it_ml, ml_ms);
  }
  std::printf("# expectation: steiner iteration counts stay ~flat with n "
              "while CG/Jacobi grow\n");
  return 0;
}
