#include "hicond/util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "hicond/util/common.hpp"

namespace hicond {

void OnlineStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double OnlineStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::span<const double> values, double p) {
  HICOND_CHECK(!values.empty(), "percentile of empty sample");
  HICOND_CHECK(p >= 0.0 && p <= 100.0, "percentile out of range");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Histogram::Histogram(double lo, double hi) : lo_(lo), hi_(hi) {
  HICOND_CHECK(lo > 0.0 && hi > lo, "Histogram requires 0 < lo < hi");
  const int n = static_cast<int>(std::ceil(std::log2(hi / lo)));
  buckets_.assign(static_cast<std::size_t>(std::max(n, 1)), 0);
}

int Histogram::bucket_index(double x) const noexcept {
  if (!(x > lo_)) return 0;
  const int i = static_cast<int>(std::floor(std::log2(x / lo_)));
  return std::clamp(i, 0, num_buckets() - 1);
}

void Histogram::add(double x) noexcept {
  ++buckets_[static_cast<std::size_t>(bucket_index(x))];
  stats_.add(x);
}

double Histogram::bucket_lower(int i) const noexcept {
  return lo_ * std::exp2(static_cast<double>(i));
}

double Histogram::bucket_upper(int i) const noexcept {
  return i + 1 == num_buckets() ? hi_
                                : lo_ * std::exp2(static_cast<double>(i + 1));
}

double Histogram::quantile(double q) const {
  HICOND_CHECK(count() > 0, "quantile of empty histogram");
  HICOND_CHECK(q >= 0.0 && q <= 1.0, "quantile out of range");
  const double target = q * static_cast<double>(count());
  double cumulative = 0.0;
  for (int i = 0; i < num_buckets(); ++i) {
    const double in_bucket = static_cast<double>(bucket_count(i));
    if (cumulative + in_bucket >= target && in_bucket > 0.0) {
      // Geometric interpolation: the bucket spans one octave.
      const double frac = std::clamp(
          in_bucket > 0.0 ? (target - cumulative) / in_bucket : 0.0, 0.0, 1.0);
      const double value = bucket_lower(i) * std::exp2(frac);
      return std::clamp(value, stats_.min(), stats_.max());
    }
    cumulative += in_bucket;
  }
  return stats_.max();
}

double geometric_mean(std::span<const double> values) {
  HICOND_CHECK(!values.empty(), "geometric mean of empty sample");
  double log_sum = 0.0;
  for (double v : values) {
    HICOND_CHECK(v > 0.0, "geometric mean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace hicond
