// The spectral portrait of (phi, gamma) decompositions (Theorem 4.1).
//
// For a decomposition with membership matrix R, the subspace
// Range(D^{1/2} R) consists of cluster-wise constant vectors scaled by the
// square roots of the vertex volumes. Theorem 4.1 bounds how far the low
// eigenvectors of the normalized Laplacian A_hat can be from that subspace:
// for any unit x in the span of eigenvectors with eigenvalues < lambda and
// unit y in Null(R' D^{1/2}),
//     (x' y)^2 <= 3 lambda (1 + 2 (gamma phi^2)^{-1}),
// equivalently the projection z of x onto Range(D^{1/2} R) satisfies
//     ||z||^2 >= 1 - 3 lambda (1 + 2 (gamma phi^2)^{-1}).
//
// This module computes the measured alignments and the bound so they can be
// compared eigenvector by eigenvector.
#pragma once

#include <vector>

#include "hicond/graph/graph.hpp"
#include "hicond/partition/decomposition.hpp"

namespace hicond {

struct PortraitRow {
  double lambda = 0.0;        ///< eigenvalue of A_hat
  double alignment_sq = 0.0;  ///< ||proj_{Range(D^{1/2}R)} x||^2
  double bound = 0.0;         ///< 1 - 3 lambda (1 + 2/(gamma phi^2)), can be <0
};

struct SpectralPortrait {
  std::vector<PortraitRow> rows;  ///< one per eigenvector, ascending lambda
  double phi = 0.0;               ///< decomposition conductance used
  double gamma = 0.0;             ///< decomposition gamma used
  double support_factor = 0.0;    ///< 3 (1 + 2/(gamma phi^2))
};

/// Compute the portrait with explicitly provided (phi, gamma) parameters.
[[nodiscard]] SpectralPortrait spectral_portrait_with_params(
    const Graph& g, const Decomposition& p, double phi, double gamma);

/// Compute the portrait, measuring phi (certified lower bound over cluster
/// closures... conservatively the *induced-subgraph* conductance the theorem
/// uses) and gamma from the decomposition itself. Dense; n <= ~600.
[[nodiscard]] SpectralPortrait spectral_portrait(const Graph& g,
                                                 const Decomposition& p);

/// Squared norm of the projection of x onto Range(D^{1/2} R). The columns
/// D^{1/2} r_c have disjoint supports, so the projection is cluster-local.
[[nodiscard]] double alignment_with_cluster_space(const Graph& g,
                                                  const Decomposition& p,
                                                  std::span<const double> x);

}  // namespace hicond
