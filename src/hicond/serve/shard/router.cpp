#include "hicond/serve/shard/router.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <exception>
#include <utility>

#include "hicond/obs/metrics.hpp"
#include "hicond/serve/snapshot.hpp"
#include "hicond/util/common.hpp"
#include "hicond/util/unique_fd.hpp"

namespace hicond::serve::shard {

namespace {

constexpr int kPollMillis = 20;  ///< upkeep tick while idle

std::string error_response(std::int64_t id, const char* code,
                           const std::string& message) {
  obs::JsonWriter w;
  w.begin_object();
  if (id >= 0) {
    w.kv("id", id);
  }
  w.kv("ok", false);
  w.kv("error", code);
  w.kv("message", message);
  w.end_object();
  return w.str();
}

const char* state_name(WorkerPool::State s) {
  switch (s) {
    case WorkerPool::State::down:
      return "down";
    case WorkerPool::State::starting:
      return "starting";
    case WorkerPool::State::up:
      return "up";
  }
  return "unknown";
}

}  // namespace

Router::Router(const RouterOptions& options)
    : options_(options),
      ring_(options.workers, options.vnodes),
      pool_(options.worker, options.workers),
      lanes_(static_cast<std::size_t>(options.workers)) {
  HICOND_CHECK(options.inflight_window >= 1,
               "router in-flight window must be at least 1");
  HICOND_CHECK(options.backlog_capacity >= 1,
               "router backlog capacity must be at least 1");
  HICOND_CHECK(options.max_spawn_attempts >= 1,
               "router needs at least one spawn attempt");
  // EPIPE is a return code everywhere in this subsystem; a late write to a
  // SIGKILLed worker must not kill the router.
  ::signal(SIGPIPE, SIG_IGN);
  for (int i = 0; i < options.workers; ++i) {
    pool_.start_and_connect(i);
  }
}

Router::~Router() { pool_.kill_all(); }

std::uint64_t Router::preload(const std::string& path) {
  const Graph g = read_graph_auto(path);
  const std::uint64_t fp = graph_fingerprint(g);
  loads_[fp] = path;
  Pending p;
  p.raw = load_line_for(fp);
  p.fp = fp;
  p.has_fp = true;
  p.action = Action::absorb;
  const int w = route_worker(fp);
  if (w >= 0) {
    (void)dispatch(w, std::move(p));
  }
  return fp;
}

std::string Router::load_line_for(std::uint64_t fp) const {
  const auto it = loads_.find(fp);
  HICOND_CHECK(it != loads_.end(), "no load path recorded for fingerprint");
  obs::JsonWriter w;
  w.begin_object();
  w.kv("op", "load");
  w.kv("path", it->second);
  w.end_object();
  return w.str();
}

// ---------------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------------

void Router::respond(const std::string& body) {
  if (client_gone_ || client_out_ < 0) {
    return;
  }
  if (!wire::write_line(client_out_, body)) {
    client_gone_ = true;
  }
}

void Router::respond_error(std::int64_t id, const char* code,
                           const std::string& message) {
  respond(error_response(id, code, message));
}

void Router::handle_client_line(const std::string& line) {
  ++stat_requests_;
  obs::MetricsRegistry::global().counter_add("serve.router.requests");
  std::int64_t id = -1;
  double deadline_ms =
      options_.default_deadline_ms > 0.0 ? options_.default_deadline_ms : -1.0;
  obs::JsonValue request;
  std::string op;
  try {
    request = obs::parse_json(line);
    HICOND_CHECK(request.is_object(), "request must be a JSON object");
    if (const obs::JsonValue* idv = request.find("id");
        idv != nullptr && idv->is_number()) {
      id = static_cast<std::int64_t>(idv->number);
    }
    const obs::JsonValue* opv = request.find("op");
    HICOND_CHECK(opv != nullptr && opv->is_string(),
                 "request needs a string \"op\" field");
    op = opv->string;
    if (const obs::JsonValue* dl = request.find("deadline_ms");
        dl != nullptr) {
      HICOND_CHECK(dl->is_number(), "deadline_ms must be a number");
      deadline_ms = dl->number;
    }
  } catch (const std::exception& e) {
    respond_error(id, "parse_error", e.what());
    return;
  }
  try {
    if (op == "topology") {
      handle_topology(id);
    } else if (op == "stats") {
      start_stats_fanout(id, deadline_ms);
    } else if (op == "shutdown") {
      begin_drain(id);
    } else if (op == "load") {
      handle_load(request, line, id, deadline_ms);
    } else if (op == "solve" || op == "batch_solve") {
      handle_solve(request, line, id, deadline_ms);
    } else if (op == "update") {
      handle_update(request, line, id, deadline_ms);
    } else {
      respond_error(id, "unknown_op", "unsupported op: " + op);
    }
  } catch (const std::exception& e) {
    respond_error(id, "bad_request", e.what());
  }
}

void Router::handle_load(const obs::JsonValue& request,
                         const std::string& line, std::int64_t id,
                         double deadline_ms) {
  const obs::JsonValue& path = request.at("path");
  HICOND_CHECK(path.is_string(), "load needs a string \"path\"");
  // The router reads the graph itself: routing needs the fingerprint
  // before any worker has seen the file, and the same parse validates the
  // input once at the outermost boundary.
  std::uint64_t fp = 0;
  try {
    const Graph g = read_graph_auto(path.string);
    fp = graph_fingerprint(g);
  } catch (const std::exception& e) {
    respond_error(id, "bad_request", e.what());
    return;
  }
  loads_[fp] = path.string;
  const int w = route_worker(fp);
  if (w < 0) {
    respond_error(id, "worker_failed",
                  "no worker available for this fingerprint");
    return;
  }
  Pending p;
  p.raw = line;
  p.client_id = id;
  p.fp = fp;
  p.has_fp = true;
  p.deadline_ms = deadline_ms;
  if (dispatch(w, std::move(p)) == DispatchResult::shed) {
    return;  // dispatch already answered queue_full
  }
  // A fingerprint that is already marked hot gets its mirror refreshed too
  // (a re-load after the file changed keeps both copies in step).
  if (replicated_.count(fp) != 0) {
    const int r = ring_.replica(fp);
    if (r >= 0 && r != w && !lanes_[static_cast<std::size_t>(r)].failed) {
      Pending mirror;
      mirror.raw = load_line_for(fp);
      mirror.fp = fp;
      mirror.has_fp = true;
      mirror.action = Action::absorb;
      (void)dispatch(r, std::move(mirror));
    }
  }
}

void Router::handle_solve(const obs::JsonValue& request,
                          const std::string& line, std::int64_t id,
                          double deadline_ms) {
  const obs::JsonValue& graph_field = request.at("graph");
  HICOND_CHECK(graph_field.is_string(),
               "solve needs a string \"graph\" fingerprint");
  const std::uint64_t fp = parse_fingerprint(graph_field.string);
  ++stat_routed_;
  obs::MetricsRegistry::global().counter_add("serve.router.routed");
  requests_by_fp_[fp] += 1;
  // A derived fingerprint (the result of an `update`) routes through its
  // root with failover disabled: the mutated state lives only on the
  // worker that executed the update chain.
  const std::uint64_t root = resolve_root(fp);
  const bool derived = root != fp;
  const int w = route_worker(root, /*allow_replica=*/!derived);
  if (w < 0) {
    respond_error(id, "worker_failed",
                  "no worker available for this fingerprint");
    return;
  }
  Pending p;
  p.raw = line;
  p.client_id = id;
  p.fp = root;
  p.has_fp = true;
  p.primary_only = derived;
  p.deadline_ms = deadline_ms;
  (void)dispatch(w, std::move(p));
  maybe_recompute_hot();
}

void Router::handle_update(const obs::JsonValue& request,
                           const std::string& line, std::int64_t id,
                           double deadline_ms) {
  const obs::JsonValue& graph_field = request.at("graph");
  HICOND_CHECK(graph_field.is_string(),
               "update needs a string \"graph\" fingerprint");
  const std::uint64_t fp = parse_fingerprint(graph_field.string);
  ++stat_updates_;
  obs::MetricsRegistry::global().counter_add("serve.router.updates");
  // Updates always run on the root's primary: executing one on the mirror
  // would fork the derived state across two workers.
  const std::uint64_t root = resolve_root(fp);
  const int w = route_worker(root, /*allow_replica=*/false);
  if (w < 0) {
    respond_error(id, "worker_failed",
                  "no worker available for this fingerprint");
    return;
  }
  Pending p;
  p.raw = line;
  p.client_id = id;
  p.fp = root;
  p.has_fp = true;
  p.is_update = true;
  p.primary_only = true;
  p.update_old = fp;
  p.deadline_ms = deadline_ms;
  (void)dispatch(w, std::move(p));
}

std::uint64_t Router::resolve_root(std::uint64_t fp) const {
  if (loads_.count(fp) != 0) {
    return fp;
  }
  const auto it = derived_root_.find(fp);
  return it == derived_root_.end() ? fp : it->second;
}

// ---------------------------------------------------------------------------
// Routing, dispatch, lanes
// ---------------------------------------------------------------------------

int Router::route_worker(std::uint64_t fp, bool allow_replica) {
  const int p = ring_.primary(fp);
  const auto usable = [this](int w) {
    return w >= 0 && !lanes_[static_cast<std::size_t>(w)].failed;
  };
  if (usable(p) && pool_.state(p) == WorkerPool::State::up) {
    return p;
  }
  // Primary down, starting, or failed: a replicated fingerprint is served
  // by its mirror instead of waiting out the respawn.
  if (allow_replica && replicated_.count(fp) != 0) {
    const int r = ring_.replica(fp);
    if (usable(r) && pool_.state(r) == WorkerPool::State::up) {
      ++stat_promotions_;
      obs::MetricsRegistry::global().counter_add(
          "serve.router.replica_promotions");
      return r;
    }
  }
  if (usable(p)) {
    return p;  // queue behind the respawn
  }
  if (!allow_replica) {
    return -1;  // the state this request needs exists only on the primary
  }
  const int r = ring_.replica(fp);
  return usable(r) ? r : -1;
}

Router::DispatchResult Router::dispatch(int w, Pending&& p) {
  Lane& lane = lanes_[static_cast<std::size_t>(w)];
  if (lane.failed) {
    if (p.action == Action::relay) {
      respond_error(p.client_id, "worker_failed",
                    "worker is permanently down");
    } else if (p.action == Action::stats) {
      fanout_worker_unavailable(p.stats_tag, w);
    }
    return DispatchResult::shed;
  }
  const bool window_open =
      pool_.state(w) == WorkerPool::State::up && lane.backlog.empty() &&
      lane.inflight.size() <
          static_cast<std::size_t>(options_.inflight_window);
  if (window_open) {
    lane.outbound += p.raw;
    lane.outbound += '\n';
    lane.inflight.push_back(std::move(p));
    return DispatchResult::sent;
  }
  if (lane.backlog.size() < options_.backlog_capacity) {
    lane.backlog.push_back(std::move(p));
    return DispatchResult::queued;
  }
  ++stat_shed_;
  obs::MetricsRegistry::global().counter_add("serve.router.shed");
  if (p.action == Action::relay) {
    respond_error(p.client_id, "queue_full",
                  "worker lane is at capacity; retry later");
  } else if (p.action == Action::stats) {
    fanout_worker_unavailable(p.stats_tag, w);
  }
  return DispatchResult::shed;
}

void Router::refill_window(int w) {
  Lane& lane = lanes_[static_cast<std::size_t>(w)];
  if (pool_.state(w) != WorkerPool::State::up) {
    return;
  }
  while (!lane.backlog.empty() &&
         lane.inflight.size() <
             static_cast<std::size_t>(options_.inflight_window)) {
    Pending p = std::move(lane.backlog.front());
    lane.backlog.pop_front();
    lane.outbound += p.raw;
    lane.outbound += '\n';
    lane.inflight.push_back(std::move(p));
  }
}

void Router::flush(int w) {
  Lane& lane = lanes_[static_cast<std::size_t>(w)];
  if (lane.outbound.empty() || pool_.state(w) != WorkerPool::State::up) {
    return;
  }
  if (!wire::drain_nonblocking(pool_.fd(w), lane.outbound)) {
    handle_worker_death(w);
  }
}

void Router::on_worker_readable(int w) {
  Lane& lane = lanes_[static_cast<std::size_t>(w)];
  const int fd = pool_.fd(w);
  bool died = false;
  for (;;) {
    const wire::ReadStatus status = wire::read_into(fd, lane.inbound);
    if (status == wire::ReadStatus::data) {
      continue;
    }
    died = status != wire::ReadStatus::would_block;  // EOF or hard error
    break;
  }
  // Complete whatever responses did arrive before acting on the death --
  // an answered request must not be retried.
  std::string line;
  while (lane.inbound.next_line(line)) {
    complete_line(w, line);
  }
  if (died) {
    handle_worker_death(w);
  } else {
    refill_window(w);
  }
}

void Router::complete_line(int w, const std::string& line) {
  Lane& lane = lanes_[static_cast<std::size_t>(w)];
  if (lane.inflight.empty()) {
    // Protocol violation (a worker must emit exactly one response per
    // request line); log and drop rather than crash the deployment.
    std::fprintf(stderr,
                 "hicond_router: unmatched response from worker %d: %s\n", w,
                 line.c_str());
    return;
  }
  Pending p = std::move(lane.inflight.front());
  lane.inflight.pop_front();
  switch (p.action) {
    case Action::relay:
      // Record even when the relay was discarded (deadline expired while in
      // flight): the worker *did* execute the update, so the routing table
      // must learn the derived fingerprint either way.
      if (p.is_update) {
        record_update_result(p, line);
      }
      if (!p.discarded) {
        respond(line);
      }
      break;
    case Action::absorb:
      break;
    case Action::stats: {
      const auto it = fanouts_.find(p.stats_tag);
      if (it != fanouts_.end()) {
        try {
          it->second.docs.emplace_back(w, obs::parse_json(line));
        } catch (const std::exception&) {
          it->second.unavailable.push_back(w);
        }
        if (--it->second.outstanding <= 0) {
          finish_stats(p.stats_tag);
        }
      }
      break;
    }
  }
}

void Router::record_update_result(const Pending& p, const std::string& line) {
  try {
    const obs::JsonValue doc = obs::parse_json(line);
    const obs::JsonValue* ok = doc.find("ok");
    if (ok == nullptr || ok->kind != obs::JsonValue::Kind::boolean ||
        !ok->boolean) {
      return;  // the worker rejected the update; no state changed
    }
    if (const obs::JsonValue* unchanged = doc.find("unchanged");
        unchanged != nullptr &&
        unchanged->kind == obs::JsonValue::Kind::boolean &&
        unchanged->boolean) {
      return;  // empty batch: no new fingerprint to track
    }
    const obs::JsonValue* ng = doc.find("new_graph");
    if (ng == nullptr || !ng->is_string()) {
      return;
    }
    const std::uint64_t new_fp = parse_fingerprint(ng->string);
    if (new_fp == p.update_old) {
      return;
    }
    if (derived_root_.emplace(new_fp, p.fp).second) {
      // First sighting of this derived fingerprint: keep the verbatim line
      // so the owning primary can re-execute the chain after a respawn
      // (cache idempotence worker-side makes the replay land exactly once).
      update_replay_.emplace_back(p.fp, p.raw);
    }
    // The pre-update fingerprint's hot mirror is stale relative to the
    // tenant's working set, which just moved to the derived fingerprint;
    // stop promoting it and make replication re-earnable from fresh counts.
    replicated_.erase(p.update_old);
    requests_by_fp_.erase(p.update_old);
  } catch (const std::exception&) {
    // Unparseable relay body; nothing to track.
  }
}

// ---------------------------------------------------------------------------
// Supervision: death, respawn, replay, retry
// ---------------------------------------------------------------------------

void Router::handle_worker_death(int w) {
  Lane& lane = lanes_[static_cast<std::size_t>(w)];
  if (pool_.state(w) == WorkerPool::State::down && lane.inflight.empty() &&
      lane.outbound.empty()) {
    return;  // already handled
  }
  ++stat_restarts_;
  obs::MetricsRegistry::global().counter_add("serve.router.restarts");
  pool_.mark_dead(w);
  lane.outbound.clear();
  lane.inbound.clear();
  std::deque<Pending> inflight = std::move(lane.inflight);
  lane.inflight.clear();

  std::vector<Pending> requeue;
  for (Pending& p : inflight) {
    switch (p.action) {
      case Action::stats:
        fanout_worker_unavailable(p.stats_tag, w);
        break;
      case Action::absorb:
        break;  // replay rebuilds the load set
      case Action::relay: {
        if (p.discarded) {
          break;
        }
        if (p.retried) {
          respond_error(p.client_id, "worker_failed",
                        "request failed twice across a worker restart");
          break;
        }
        p.retried = true;
        ++stat_retries_;
        obs::MetricsRegistry::global().counter_add("serve.router.retries");
        // Replicated fingerprints fail over immediately; everything else
        // (including primary-only update traffic, whose state the mirror
        // does not have) waits for the respawn at the front of the backlog.
        if (p.has_fp && !p.primary_only && replicated_.count(p.fp) != 0) {
          const int other = ring_.primary(p.fp) == w ? ring_.replica(p.fp)
                                                     : ring_.primary(p.fp);
          if (other >= 0 && other != w &&
              !lanes_[static_cast<std::size_t>(other)].failed &&
              pool_.state(other) == WorkerPool::State::up) {
            ++stat_promotions_;
            obs::MetricsRegistry::global().counter_add(
                "serve.router.replica_promotions");
            (void)dispatch(other, std::move(p));
            break;
          }
        }
        requeue.push_back(std::move(p));
        break;
      }
    }
  }
  // Retried requests go ahead of anything that was still queued: they were
  // admitted first, and FIFO per fingerprint is part of the contract.
  for (auto it = requeue.rbegin(); it != requeue.rend(); ++it) {
    lane.backlog.push_front(std::move(*it));
  }

  if (draining_) {
    // No respawn during shutdown: fail whatever is left.
    for (Pending& p : lane.backlog) {
      if (p.action == Action::relay && !p.discarded) {
        respond_error(p.client_id, "worker_failed",
                      "worker died during shutdown drain");
      } else if (p.action == Action::stats) {
        fanout_worker_unavailable(p.stats_tag, w);
      }
    }
    lane.backlog.clear();
    return;
  }
  lane.spawn_attempts = 1;
  pool_.start(w);  // upkeep() completes the connect and replays loads
}

void Router::on_worker_up(int w) {
  Lane& lane = lanes_[static_cast<std::size_t>(w)];
  lane.spawn_attempts = 0;
  // Replay every load this worker owns -- the preload set plus everything
  // loaded since -- ahead of the requests waiting in the backlog. loads_
  // is ordered by fingerprint, so replay order is deterministic.
  std::deque<Pending> replay;
  for (const auto& [fp, path] : loads_) {
    const bool owns_primary = ring_.primary(fp) == w;
    const bool owns_replica =
        replicated_.count(fp) != 0 && ring_.replica(fp) == w;
    if (!owns_primary && !owns_replica) {
      continue;
    }
    Pending p;
    p.raw = load_line_for(fp);
    p.fp = fp;
    p.has_fp = true;
    p.action = Action::absorb;
    replay.push_back(std::move(p));
  }
  // Then every successful update whose root this worker primaries, in
  // execution order: replay rebuilds the derived graphs the dead worker
  // held (the loads above restored their roots first). Worker-side cache
  // idempotence makes a replayed update land exactly once even when the
  // retried in-flight copy of the same line also runs.
  for (const auto& [root, line] : update_replay_) {
    if (ring_.primary(root) != w) {
      continue;
    }
    Pending p;
    p.raw = line;
    p.fp = root;
    p.has_fp = true;
    p.primary_only = true;
    p.action = Action::absorb;
    replay.push_back(std::move(p));
  }
  for (auto it = replay.rbegin(); it != replay.rend(); ++it) {
    lane.backlog.push_front(std::move(*it));
  }
  refill_window(w);
}

void Router::fail_worker(int w) {
  Lane& lane = lanes_[static_cast<std::size_t>(w)];
  lane.failed = true;
  std::fprintf(stderr,
               "hicond_router: worker %d failed to start %d times; marking "
               "it permanently down\n",
               w, options_.max_spawn_attempts);
  for (Pending& p : lane.backlog) {
    if (p.action == Action::relay && !p.discarded) {
      respond_error(p.client_id, "worker_failed",
                    "worker could not be restarted");
    } else if (p.action == Action::stats) {
      fanout_worker_unavailable(p.stats_tag, w);
    }
  }
  lane.backlog.clear();
}

void Router::upkeep() {
  for (int w = 0; w < pool_.count(); ++w) {
    Lane& lane = lanes_[static_cast<std::size_t>(w)];
    if (lane.failed || draining_) {
      continue;
    }
    const WorkerPool::State state = pool_.state(w);
    if (state == WorkerPool::State::starting) {
      if (pool_.try_connect(w)) {
        on_worker_up(w);
      } else if (pool_.state(w) == WorkerPool::State::down) {
        // Child died before binding; retry or give up below.
      } else if (pool_.starting_seconds(w) >
                 options_.worker.spawn_timeout_seconds) {
        pool_.mark_dead(w);  // hung before binding; treat like a death
      }
    }
    if (pool_.state(w) == WorkerPool::State::down) {
      if (lane.spawn_attempts >= options_.max_spawn_attempts) {
        fail_worker(w);
      } else {
        lane.spawn_attempts += 1;
        pool_.start(w);
      }
    }
  }
  check_deadlines();
  maybe_finish_drain();
}

void Router::check_deadlines() {
  const auto expired = [](const Pending& p) {
    return p.deadline_ms >= 0.0 && p.action == Action::relay &&
           !p.discarded && p.since.millis() > p.deadline_ms;
  };
  for (Lane& lane : lanes_) {
    for (Pending& p : lane.inflight) {
      if (expired(p)) {
        respond_error(p.client_id, "deadline_exceeded",
                      "deadline expired while the request was in flight");
        p.discarded = true;  // keep the slot: the response is still owed
      }
    }
    for (auto it = lane.backlog.begin(); it != lane.backlog.end();) {
      if (expired(*it)) {
        respond_error(it->client_id, "deadline_exceeded",
                      "deadline expired while queued for a worker");
        it = lane.backlog.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void Router::maybe_recompute_hot() {
  if (++routed_since_hot_scan_ < options_.hot_recompute_interval ||
      options_.replicate_top_k <= 0 || ring_.num_workers() < 2) {
    return;
  }
  routed_since_hot_scan_ = 0;
  std::vector<std::pair<std::int64_t, std::uint64_t>> ranked;
  for (const auto& [fp, count] : requests_by_fp_) {
    if (count >= options_.hot_threshold && loads_.count(fp) != 0) {
      ranked.emplace_back(count, fp);
    }
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  if (ranked.size() > static_cast<std::size_t>(options_.replicate_top_k)) {
    ranked.resize(static_cast<std::size_t>(options_.replicate_top_k));
  }
  for (const auto& [count, fp] : ranked) {
    if (replicated_.count(fp) != 0) {
      continue;  // replication is sticky for the session
    }
    const int r = ring_.replica(fp);
    if (r < 0 || lanes_[static_cast<std::size_t>(r)].failed) {
      continue;
    }
    replicated_.insert(fp);
    ++stat_replications_;
    obs::MetricsRegistry::global().counter_add("serve.router.replications");
    Pending mirror;
    mirror.raw = load_line_for(fp);
    mirror.fp = fp;
    mirror.has_fp = true;
    mirror.action = Action::absorb;
    (void)dispatch(r, std::move(mirror));
  }
}

// ---------------------------------------------------------------------------
// stats fan-out / topology / shutdown
// ---------------------------------------------------------------------------

void Router::fanout_worker_unavailable(int tag, int w) {
  const auto it = fanouts_.find(tag);
  if (it == fanouts_.end()) {
    return;
  }
  it->second.unavailable.push_back(w);
  if (--it->second.outstanding <= 0) {
    finish_stats(tag);
  }
}

void Router::start_stats_fanout(std::int64_t id, double deadline_ms) {
  const int tag = next_stats_tag_++;
  StatsFanout& fan = fanouts_[tag];
  fan.client_id = id;
  std::vector<int> targets;
  for (int w = 0; w < pool_.count(); ++w) {
    if (!lanes_[static_cast<std::size_t>(w)].failed &&
        pool_.state(w) != WorkerPool::State::down) {
      targets.push_back(w);
    } else {
      fan.unavailable.push_back(w);
    }
  }
  fan.outstanding = static_cast<int>(targets.size());
  if (fan.outstanding == 0) {
    finish_stats(tag);
    return;
  }
  for (const int w : targets) {
    Pending p;
    p.client_id = id;
    p.raw = "{\"op\":\"stats\"}";
    p.action = Action::stats;
    p.stats_tag = tag;
    p.deadline_ms = deadline_ms;
    (void)dispatch(w, std::move(p));
  }
}

void Router::finish_stats(int tag) {
  const auto it = fanouts_.find(tag);
  if (it == fanouts_.end()) {
    return;
  }
  StatsFanout fan = std::move(it->second);
  fanouts_.erase(it);
  std::sort(fan.docs.begin(), fan.docs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  const auto sum_field = [&fan](std::initializer_list<const char*> path) {
    double total = 0.0;
    for (const auto& [w, doc] : fan.docs) {
      const obs::JsonValue* v = &doc;
      for (const char* key : path) {
        v = v->find(key);
        if (v == nullptr) {
          break;
        }
      }
      if (v != nullptr && v->is_number()) {
        total += v->number;
      }
    }
    return static_cast<std::int64_t>(total);
  };

  int workers_up = 0;
  for (int w = 0; w < pool_.count(); ++w) {
    if (pool_.state(w) == WorkerPool::State::up) {
      ++workers_up;
    }
  }

  obs::JsonWriter w;
  w.begin_object();
  if (fan.client_id >= 0) {
    w.kv("id", fan.client_id);
  }
  w.kv("ok", true);
  w.kv("op", "stats");
  w.kv("workers", pool_.count());

  w.key("aggregate");
  w.begin_object();
  w.key("cache");
  w.begin_object();
  w.kv("hits", sum_field({"cache", "hits"}));
  w.kv("misses", sum_field({"cache", "misses"}));
  w.kv("evictions", sum_field({"cache", "evictions"}));
  w.kv("entries", sum_field({"cache", "entries"}));
  w.kv("bytes", sum_field({"cache", "bytes"}));
  w.kv("budget_bytes", sum_field({"cache", "budget_bytes"}));
  w.end_object();
  w.kv("graphs_loaded", sum_field({"graphs_loaded"}));
  w.kv("requests", sum_field({"requests"}));
  w.kv("shed", sum_field({"shed"}));
  w.end_object();

  w.key("router");
  w.begin_object();
  w.kv("requests", stat_requests_);
  w.kv("routed", stat_routed_);
  w.kv("updates", stat_updates_);
  w.kv("derived_graphs", static_cast<std::int64_t>(derived_root_.size()));
  w.kv("retries", stat_retries_);
  w.kv("restarts", stat_restarts_);
  w.kv("replica_promotions", stat_promotions_);
  w.kv("replications", stat_replications_);
  w.kv("shed", stat_shed_);
  w.kv("workers_up", workers_up);
  w.key("hot");
  w.begin_array();
  for (const std::uint64_t fp : replicated_) {
    w.value(fingerprint_hex(fp));
  }
  w.end_array();
  w.end_object();

  w.key("per_worker");
  w.begin_array();
  std::size_t doc_index = 0;
  for (int i = 0; i < pool_.count(); ++i) {
    const Lane& lane = lanes_[static_cast<std::size_t>(i)];
    w.begin_object();
    w.kv("worker", i);
    w.kv("state",
         lane.failed ? "failed" : state_name(pool_.state(i)));
    w.kv("pid", static_cast<std::int64_t>(pool_.pid(i)));
    w.kv("restarts", pool_.restarts(i));
    w.kv("inflight", lane.inflight.size());
    w.kv("backlog", lane.backlog.size());
    if (doc_index < fan.docs.size() && fan.docs[doc_index].first == i) {
      w.key("stats");
      obs::write_json(w, fan.docs[doc_index].second);
      ++doc_index;
    }
    w.end_object();
    obs::MetricsRegistry::global().gauge_set(
        "serve.router.worker" + std::to_string(i) + ".queue_depth",
        static_cast<double>(lane.inflight.size() + lane.backlog.size()));
  }
  w.end_array();
  w.end_object();
  respond(w.str());
}

void Router::handle_topology(std::int64_t id) {
  obs::JsonWriter w;
  w.begin_object();
  if (id >= 0) {
    w.kv("id", id);
  }
  w.kv("ok", true);
  w.kv("op", "topology");
  w.kv("workers_total", pool_.count());
  w.key("ring");
  w.begin_object();
  w.kv("vnodes_per_worker", ring_.vnodes_per_worker());
  w.kv("replicate_top_k", options_.replicate_top_k);
  w.kv("hot_threshold", options_.hot_threshold);
  w.end_object();
  w.key("workers");
  w.begin_array();
  for (int i = 0; i < pool_.count(); ++i) {
    const Lane& lane = lanes_[static_cast<std::size_t>(i)];
    w.begin_object();
    w.kv("worker", i);
    w.kv("state", lane.failed ? "failed" : state_name(pool_.state(i)));
    w.kv("pid", static_cast<std::int64_t>(pool_.pid(i)));
    w.kv("socket", pool_.socket_path(i));
    w.kv("restarts", pool_.restarts(i));
    w.kv("inflight", lane.inflight.size());
    w.kv("backlog", lane.backlog.size());
    w.end_object();
  }
  w.end_array();
  w.key("graphs");
  w.begin_array();
  for (const auto& [fp, path] : loads_) {
    w.begin_object();
    w.kv("fingerprint", fingerprint_hex(fp));
    w.kv("path", path);
    w.kv("primary", ring_.primary(fp));
    w.kv("replica", ring_.replica(fp));
    w.kv("replicated", replicated_.count(fp) != 0);
    const auto rit = requests_by_fp_.find(fp);
    w.kv("requests", rit == requests_by_fp_.end() ? std::int64_t{0}
                                                  : rit->second);
    w.end_object();
  }
  w.end_array();
  w.key("derived");
  w.begin_array();
  for (const auto& [fp, root] : derived_root_) {
    w.begin_object();
    w.kv("fingerprint", fingerprint_hex(fp));
    w.kv("root", fingerprint_hex(root));
    w.kv("primary", ring_.primary(root));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  respond(w.str());
}

void Router::begin_drain(std::int64_t id) {
  if (draining_) {
    return;
  }
  draining_ = true;
  shutdown_requested_ = id != -2;
  shutdown_id_ = id;
  drain_timer_.reset();
}

void Router::maybe_finish_drain() {
  if (!draining_ || stop_) {
    return;
  }
  const bool timed_out =
      drain_timer_.seconds() > options_.drain_timeout_seconds;
  bool lanes_empty = true;
  for (const Lane& lane : lanes_) {
    if (!lane.inflight.empty() || !lane.backlog.empty() ||
        !lane.outbound.empty()) {
      lanes_empty = false;
    }
  }
  if (!worker_shutdowns_sent_) {
    if (!lanes_empty && !timed_out) {
      return;  // let admitted work finish first
    }
    for (int i = 0; i < pool_.count(); ++i) {
      if (pool_.state(i) == WorkerPool::State::up) {
        Pending p;
        p.raw = "{\"op\":\"shutdown\"}";
        p.action = Action::absorb;
        (void)dispatch(i, std::move(p));
      }
    }
    worker_shutdowns_sent_ = true;
    return;
  }
  if (!lanes_empty && !timed_out) {
    return;  // waiting for the shutdown acknowledgements
  }
  const int killed = pool_.reap_all(5.0);
  if (shutdown_requested_) {
    obs::JsonWriter w;
    w.begin_object();
    if (shutdown_id_ >= 0) {
      w.kv("id", shutdown_id_);
    }
    w.kv("ok", true);
    w.kv("op", "shutdown");
    w.kv("workers_stopped", pool_.count());
    w.kv("workers_killed", killed);
    w.end_object();
    respond(w.str());
  }
  stop_ = true;
}

// ---------------------------------------------------------------------------
// Event loop and transports
// ---------------------------------------------------------------------------

int Router::run_loop(int client_in, int client_out, bool shutdown_on_eof) {
  client_out_ = client_out;
  client_gone_ = false;
  bool client_eof = false;
  std::string line;
  while (!stop_) {
    std::vector<pollfd> fds;
    // Slot 0 is the client (skipped once EOF or drain begins).
    const bool watch_client = !client_eof && !draining_;
    fds.push_back(pollfd{watch_client ? client_in : -1, POLLIN, 0});
    std::vector<int> fd_worker;
    for (int w = 0; w < pool_.count(); ++w) {
      if (pool_.state(w) != WorkerPool::State::up) {
        continue;
      }
      const Lane& lane = lanes_[static_cast<std::size_t>(w)];
      short events = POLLIN;
      if (!lane.outbound.empty()) {
        events |= POLLOUT;
      }
      fds.push_back(pollfd{pool_.fd(w), events, 0});
      fd_worker.push_back(w);
    }
    const int rc = ::poll(fds.data(), fds.size(), kPollMillis);
    if (rc < 0 && errno != EINTR) {
      break;
    }
    for (std::size_t i = 1; i < fds.size(); ++i) {
      const int w = fd_worker[i - 1];
      if (pool_.state(w) != WorkerPool::State::up) {
        continue;  // a death handled earlier this round invalidated the fd
      }
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        on_worker_readable(w);
      }
      if (pool_.state(w) == WorkerPool::State::up &&
          (fds[i].revents & POLLOUT) != 0) {
        flush(w);
      }
    }
    // Flush lanes that accumulated bytes this round (dispatch never writes
    // directly; a freshly filled buffer would otherwise wait one tick).
    for (int w = 0; w < pool_.count(); ++w) {
      if (pool_.state(w) == WorkerPool::State::up) {
        refill_window(w);
        flush(w);
      }
    }
    if (watch_client && (fds[0].revents & (POLLIN | POLLHUP)) != 0) {
      const wire::ReadStatus status = wire::read_into(client_in, client_buffer_);
      if (status == wire::ReadStatus::data) {
        while (!draining_ && client_buffer_.next_line(line)) {
          if (!line.empty()) {
            handle_client_line(line);
          }
        }
      } else if (status != wire::ReadStatus::would_block) {
        client_eof = true;
        if (shutdown_on_eof) {
          begin_drain(-2);
        } else {
          break;  // unix-socket client disconnected; workers stay up
        }
      }
    }
    upkeep();
  }
  // A client that disconnects mid-flight must not leave stale relays: any
  // response still owed would be written to the next connection otherwise.
  for (Lane& lane : lanes_) {
    for (Pending& p : lane.inflight) {
      if (p.action == Action::relay) {
        p.discarded = true;
      }
    }
    lane.backlog.erase(
        std::remove_if(lane.backlog.begin(), lane.backlog.end(),
                       [](const Pending& p) {
                         return p.action == Action::relay;
                       }),
        lane.backlog.end());
  }
  fanouts_.clear();
  client_buffer_.clear();
  client_out_ = -1;
  return 0;
}

int Router::run_stream(int in_fd, int out_fd) {
  return run_loop(in_fd, out_fd, /*shutdown_on_eof=*/true);
}

int Router::run_unix_socket(const std::string& path) {
  sockaddr_un addr{};
  HICOND_CHECK(path.size() < sizeof addr.sun_path,
               "unix socket path is too long");
  const unique_fd listener(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  HICOND_CHECK(static_cast<bool>(listener), "failed to create unix socket");
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  HICOND_CHECK(::bind(listener.get(), reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr) == 0 &&
                   ::listen(listener.get(), 8) == 0,
               "failed to bind/listen on unix socket path");
  while (!stop_) {
    const unique_fd fd(
        ::accept4(listener.get(), nullptr, nullptr, SOCK_CLOEXEC));
    if (!fd) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    // unique_fd closes the connection even when run_loop throws mid-session
    // (it used to leak here and strand the client).
    run_loop(fd.get(), fd.get(), /*shutdown_on_eof=*/false);
  }
  ::unlink(path.c_str());
  return 0;
}

}  // namespace hicond::serve::shard
