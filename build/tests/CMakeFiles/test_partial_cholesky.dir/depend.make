# Empty dependencies file for test_partial_cholesky.
# This may be replaced when dependencies are built.
