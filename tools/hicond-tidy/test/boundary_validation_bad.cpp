// Exported functions that take a core structure but never reach the
// validation macros. In fixture mode the main file stands in for a
// public header.

namespace hicond {
struct Graph {
  int n = 0;
};
struct CsrMatrix {
  int rows = 0;
};
void report_check_failure(const char* what);
}  // namespace hicond

#define HICOND_CHECK(expr, what)                     \
  do {                                               \
    if (!(expr)) ::hicond::report_check_failure(what); \
  } while (false)

namespace hicond {

int unchecked_entry(const Graph& g) {  // expect: boundary-validation
  return g.n * 2;
}

int unchecked_matrix(const CsrMatrix* m) {  // expect: boundary-validation
  return m->rows;
}

// Internal linkage: not itself an API boundary, but calling it does not
// count as validation either.
static int plain_helper(const Graph& g) { return g.n; }

int calls_only_unchecked(const Graph& g) {  // expect: boundary-validation
  return plain_helper(g) + 1;
}

}  // namespace hicond
