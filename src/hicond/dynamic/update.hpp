// Edge-update batches over immutable CSR graphs (the dynamic subsystem's
// entry point).
//
// A serving process cannot afford a from-scratch reload per edge change
// (ROADMAP item 2), so updates are applied as a batch rewrite of the CSR
// arrays: untouched adjacency rows are copied verbatim, touched rows are
// re-merged in sorted order, and the result goes through Graph::from_csr.
// Because from_csr demands canonically sorted rows, the rebuilt graph is in
// canonical (sorted-adjacency) form regardless of the update order -- which
// is what makes the content fingerprint (serve/snapshot.hpp) well behaved
// under mutation: an insert followed by the matching delete restores the
// original fingerprint bit for bit.
//
// Updates are validated *in order* against the running state of the batch:
// inserting an edge that is already present (in the base graph or earlier in
// the batch), deleting or reweighting an absent edge, and non-positive or
// non-finite weights (including reweight-to-zero) are all rejected with
// invalid_argument_error before any array is rebuilt.
#pragma once

#include <span>
#include <vector>

#include "hicond/graph/graph.hpp"

namespace hicond::obs {
struct JsonValue;
}  // namespace hicond::obs

namespace hicond::dynamic {

enum class UpdateKind {
  insert,    ///< add a new edge (u, v) with the given weight
  remove,    ///< delete an existing edge (u, v)
  reweight,  ///< replace the weight of an existing edge (u, v)
};

/// One edge mutation. Endpoints are unordered ((u, v) == (v, u)); `weight`
/// is ignored for UpdateKind::remove.
struct EdgeUpdate {
  UpdateKind kind = UpdateKind::insert;
  vidx u = 0;
  vidx v = 0;
  double weight = 0.0;

  friend bool operator==(const EdgeUpdate&, const EdgeUpdate&) = default;
};

/// Apply a batch of updates and return the mutated graph in canonical CSR
/// form. The base graph is untouched (Graph is immutable); cost is
/// O(n + m + b log b) for b updates. An empty (or net-no-op) batch returns a
/// graph bitwise identical to `g`, so its fingerprint is unchanged. Throws
/// invalid_argument_error on the violations documented above.
[[nodiscard]] Graph apply_updates(const Graph& g,
                                  std::span<const EdgeUpdate> updates);

/// Sorted, deduplicated endpoints of every update in the batch -- the
/// vertices whose incident clusters repair_decomposition re-examines.
[[nodiscard]] std::vector<vidx> touched_vertices(
    std::span<const EdgeUpdate> updates);

/// Parse the wire form of an update list (the "updates" array of the serve
/// `update` op and of `hicond_tool mutate` files): each element is
/// {"kind":"insert"|"delete"|"remove"|"reweight","u":U,"v":V,"weight":W}
/// with "weight" required for insert/reweight. `max_updates` caps the
/// untrusted array length before any allocation (checked_size). Throws
/// invalid_argument_error on malformed input.
[[nodiscard]] std::vector<EdgeUpdate> parse_updates(
    const obs::JsonValue& array, std::size_t max_updates);

}  // namespace hicond::dynamic
