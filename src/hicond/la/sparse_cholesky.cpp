#include "hicond/la/sparse_cholesky.hpp"

#include <algorithm>
#include <deque>
#include <numeric>
#include <queue>

#include "hicond/obs/trace.hpp"

namespace hicond {

namespace {

/// Reverse Cuthill-McKee: BFS from a pseudo-peripheral vertex, neighbours
/// visited in increasing-degree order, final order reversed.
std::vector<vidx> rcm(const CsrMatrix& a) {
  const vidx n = a.rows;
  auto degree = [&a](vidx v) {
    return static_cast<vidx>(a.offsets[static_cast<std::size_t>(v) + 1] -
                             a.offsets[static_cast<std::size_t>(v)]);
  };
  std::vector<vidx> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  std::vector<vidx> nbrs;
  for (vidx seed = 0; seed < n; ++seed) {
    if (visited[static_cast<std::size_t>(seed)]) continue;
    // Pseudo-peripheral start: two BFS hops from the component's first
    // vertex, keeping the farthest minimum-degree vertex.
    vidx start = seed;
    for (int hop = 0; hop < 2; ++hop) {
      std::vector<vidx> dist(static_cast<std::size_t>(n), -1);
      std::deque<vidx> q{start};
      dist[static_cast<std::size_t>(start)] = 0;
      vidx far = start;
      while (!q.empty()) {
        const vidx v = q.front();
        q.pop_front();
        if (dist[static_cast<std::size_t>(v)] >
                dist[static_cast<std::size_t>(far)] ||
            (dist[static_cast<std::size_t>(v)] ==
                 dist[static_cast<std::size_t>(far)] &&
             degree(v) < degree(far))) {
          far = v;
        }
        for (eidx k = a.offsets[static_cast<std::size_t>(v)];
             k < a.offsets[static_cast<std::size_t>(v) + 1]; ++k) {
          const vidx u = a.col_idx[static_cast<std::size_t>(k)];
          if (u != v && dist[static_cast<std::size_t>(u)] == -1 &&
              !visited[static_cast<std::size_t>(u)]) {
            dist[static_cast<std::size_t>(u)] =
                dist[static_cast<std::size_t>(v)] + 1;
            q.push_back(u);
          }
        }
      }
      start = far;
    }
    std::deque<vidx> q{start};
    visited[static_cast<std::size_t>(start)] = 1;
    while (!q.empty()) {
      const vidx v = q.front();
      q.pop_front();
      order.push_back(v);
      nbrs.clear();
      for (eidx k = a.offsets[static_cast<std::size_t>(v)];
           k < a.offsets[static_cast<std::size_t>(v) + 1]; ++k) {
        const vidx u = a.col_idx[static_cast<std::size_t>(k)];
        if (u != v && !visited[static_cast<std::size_t>(u)]) {
          visited[static_cast<std::size_t>(u)] = 1;
          nbrs.push_back(u);
        }
      }
      std::sort(nbrs.begin(), nbrs.end(),
                [&](vidx x, vidx y) { return degree(x) < degree(y); });
      for (vidx u : nbrs) q.push_back(u);
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

/// Greedy minimum degree on an explicit elimination graph, with a lazy
/// min-heap for vertex selection (stale entries are skipped on pop). The
/// clique insertions still dominate asymptotically on fill-heavy inputs,
/// but selection is O(log n) per step instead of O(n).
std::vector<vidx> min_degree(const CsrMatrix& a) {
  const vidx n = a.rows;
  std::vector<std::vector<vidx>> adj(static_cast<std::size_t>(n));
  std::vector<vidx> degree(static_cast<std::size_t>(n), 0);
  for (vidx v = 0; v < n; ++v) {
    for (eidx k = a.offsets[static_cast<std::size_t>(v)];
         k < a.offsets[static_cast<std::size_t>(v) + 1]; ++k) {
      const vidx u = a.col_idx[static_cast<std::size_t>(k)];
      if (u != v) adj[static_cast<std::size_t>(v)].push_back(u);
    }
    auto& row = adj[static_cast<std::size_t>(v)];
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    degree[static_cast<std::size_t>(v)] = static_cast<vidx>(row.size());
  }
  // Lazy heap of (degree, vertex); entries go stale when degrees change.
  using Entry = std::pair<vidx, vidx>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (vidx v = 0; v < n; ++v) {
    heap.emplace(degree[static_cast<std::size_t>(v)], v);
  }
  std::vector<char> eliminated(static_cast<std::size_t>(n), 0);
  std::vector<vidx> order;
  order.reserve(static_cast<std::size_t>(n));
  auto compact = [&](vidx u) {
    auto& row = adj[static_cast<std::size_t>(u)];
    row.erase(std::remove_if(row.begin(), row.end(),
                             [&](vidx w) {
                               return eliminated[static_cast<std::size_t>(w)];
                             }),
              row.end());
  };
  while (order.size() < static_cast<std::size_t>(n)) {
    const auto [d, best] = heap.top();
    heap.pop();
    if (eliminated[static_cast<std::size_t>(best)] ||
        d != degree[static_cast<std::size_t>(best)]) {
      continue;  // stale entry
    }
    eliminated[static_cast<std::size_t>(best)] = 1;
    order.push_back(best);
    // Clique the live neighbours.
    compact(best);
    const std::vector<vidx>& live = adj[static_cast<std::size_t>(best)];
    for (vidx u : live) {
      compact(u);  // rows stay sorted: remove_if preserves relative order
      auto& row = adj[static_cast<std::size_t>(u)];
      for (vidx w : live) {
        if (w == u) continue;
        if (!std::binary_search(row.begin(), row.end(), w)) {
          row.insert(std::upper_bound(row.begin(), row.end(), w), w);
        }
      }
      degree[static_cast<std::size_t>(u)] = static_cast<vidx>(row.size());
      heap.emplace(degree[static_cast<std::size_t>(u)], u);
    }
  }
  return order;
}

/// Approximate minimum degree on the quotient (element) graph, in the style
/// of Amestoy-Davis-Duff but without supervariable detection: eliminated
/// pivots become *elements* whose member lists represent their cliques
/// implicitly, so no clique edges are ever materialized. The degree of a
/// variable is approximated by |A_i| + sum over adjacent elements of
/// |L_e \ {i}| (an upper bound on the true external degree).
std::vector<vidx> amd_order(const CsrMatrix& a) {
  const vidx n = a.rows;
  std::vector<std::vector<vidx>> vars(static_cast<std::size_t>(n));  // A_i
  std::vector<std::vector<vidx>> elems(static_cast<std::size_t>(n));  // E_i
  std::vector<std::vector<vidx>> members(static_cast<std::size_t>(n));  // L_e
  std::vector<vidx> degree(static_cast<std::size_t>(n), 0);
  std::vector<char> eliminated(static_cast<std::size_t>(n), 0);
  for (vidx v = 0; v < n; ++v) {
    for (eidx k = a.offsets[static_cast<std::size_t>(v)];
         k < a.offsets[static_cast<std::size_t>(v) + 1]; ++k) {
      const vidx u = a.col_idx[static_cast<std::size_t>(k)];
      if (u != v) vars[static_cast<std::size_t>(v)].push_back(u);
    }
    auto& row = vars[static_cast<std::size_t>(v)];
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    degree[static_cast<std::size_t>(v)] = static_cast<vidx>(row.size());
  }
  using Entry = std::pair<vidx, vidx>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (vidx v = 0; v < n; ++v) {
    heap.emplace(degree[static_cast<std::size_t>(v)], v);
  }
  auto compact_element = [&](vidx e) {
    auto& l = members[static_cast<std::size_t>(e)];
    l.erase(std::remove_if(l.begin(), l.end(),
                           [&](vidx w) {
                             return eliminated[static_cast<std::size_t>(w)];
                           }),
            l.end());
  };
  std::vector<char> mark(static_cast<std::size_t>(n), 0);
  std::vector<vidx> order;
  order.reserve(static_cast<std::size_t>(n));
  while (order.size() < static_cast<std::size_t>(n)) {
    const auto [d, p] = heap.top();
    heap.pop();
    if (eliminated[static_cast<std::size_t>(p)] ||
        d != degree[static_cast<std::size_t>(p)]) {
      continue;  // stale
    }
    eliminated[static_cast<std::size_t>(p)] = 1;
    order.push_back(p);
    // L_p = A_p union of member lists of adjacent elements, minus dead.
    std::vector<vidx>& lp = members[static_cast<std::size_t>(p)];
    lp.clear();
    for (vidx u : vars[static_cast<std::size_t>(p)]) {
      if (!eliminated[static_cast<std::size_t>(u)] &&
          !mark[static_cast<std::size_t>(u)]) {
        mark[static_cast<std::size_t>(u)] = 1;
        lp.push_back(u);
      }
    }
    for (vidx e : elems[static_cast<std::size_t>(p)]) {
      for (vidx u : members[static_cast<std::size_t>(e)]) {
        if (!eliminated[static_cast<std::size_t>(u)] &&
            !mark[static_cast<std::size_t>(u)]) {
          mark[static_cast<std::size_t>(u)] = 1;
          lp.push_back(u);
        }
      }
      members[static_cast<std::size_t>(e)].clear();  // absorbed by p
      members[static_cast<std::size_t>(e)].shrink_to_fit();
    }
    std::sort(lp.begin(), lp.end());
    elems[static_cast<std::size_t>(p)].clear();
    // Update every variable in L_p.
    for (vidx i : lp) {
      // A_i loses the members now represented through element p (and p).
      auto& ai = vars[static_cast<std::size_t>(i)];
      ai.erase(std::remove_if(ai.begin(), ai.end(),
                              [&](vidx w) {
                                return w == p ||
                                       eliminated[static_cast<std::size_t>(w)] ||
                                       std::binary_search(lp.begin(), lp.end(),
                                                          w);
                              }),
               ai.end());
      // E_i drops absorbed elements, gains p.
      auto& ei = elems[static_cast<std::size_t>(i)];
      ei.erase(std::remove_if(ei.begin(), ei.end(),
                              [&](vidx e) {
                                return members[static_cast<std::size_t>(e)]
                                    .empty();
                              }),
               ei.end());
      ei.push_back(p);
      // Approximate degree.
      vidx deg = static_cast<vidx>(ai.size());
      for (vidx e : ei) {
        compact_element(e);
        const auto& l = members[static_cast<std::size_t>(e)];
        deg += static_cast<vidx>(l.size());
        if (std::binary_search(l.begin(), l.end(), i)) --deg;
      }
      degree[static_cast<std::size_t>(i)] = deg;
      heap.emplace(deg, i);
    }
    for (vidx i : lp) mark[static_cast<std::size_t>(i)] = 0;
  }
  return order;
}

}  // namespace

std::vector<vidx> compute_ordering(const CsrMatrix& a, Ordering kind) {
  HICOND_CHECK(a.rows == a.cols, "ordering of non-square matrix");
  switch (kind) {
    case Ordering::natural: {
      std::vector<vidx> id(static_cast<std::size_t>(a.rows));
      std::iota(id.begin(), id.end(), 0);
      return id;
    }
    case Ordering::rcm:
      return rcm(a);
    case Ordering::min_degree:
      return min_degree(a);
    case Ordering::amd:
      return amd_order(a);
  }
  return {};
}

SparseLDL SparseLDL::factor(const CsrMatrix& a, Ordering ordering) {
  HICOND_CHECK(a.rows == a.cols, "factorization of non-square matrix");
  const vidx n = a.rows;
  SparseLDL f;
  f.n_ = n;
  f.perm_ = compute_ordering(a, ordering);
  f.perm_inv_.assign(static_cast<std::size_t>(n), 0);
  for (vidx i = 0; i < n; ++i) {
    f.perm_inv_[static_cast<std::size_t>(f.perm_[static_cast<std::size_t>(i)])] =
        i;
  }
  // Permuted access: row k of PAP' is row perm_[k] of A with columns mapped
  // through perm_inv_. We gather each permuted row's lower part on the fly.
  std::vector<vidx> parent(static_cast<std::size_t>(n), -1);
  std::vector<vidx> flag(static_cast<std::size_t>(n), -1);
  std::vector<eidx> l_nnz(static_cast<std::size_t>(n), 0);

  auto for_each_lower = [&](vidx k, auto&& body) {
    const vidx orig = f.perm_[static_cast<std::size_t>(k)];
    for (eidx p = a.offsets[static_cast<std::size_t>(orig)];
         p < a.offsets[static_cast<std::size_t>(orig) + 1]; ++p) {
      const vidx j =
          f.perm_inv_[static_cast<std::size_t>(
              a.col_idx[static_cast<std::size_t>(p)])];
      if (j <= k) body(j, a.values[static_cast<std::size_t>(p)]);
    }
  };

  // Symbolic pass: elimination tree and column counts.
  for (vidx k = 0; k < n; ++k) {
    parent[static_cast<std::size_t>(k)] = -1;
    flag[static_cast<std::size_t>(k)] = k;
    for_each_lower(k, [&](vidx j, double) {
      while (j != k && flag[static_cast<std::size_t>(j)] != k) {
        if (parent[static_cast<std::size_t>(j)] == -1) {
          parent[static_cast<std::size_t>(j)] = k;
        }
        ++l_nnz[static_cast<std::size_t>(j)];
        flag[static_cast<std::size_t>(j)] = k;
        j = parent[static_cast<std::size_t>(j)];
      }
    });
  }
  f.l_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (vidx j = 0; j < n; ++j) {
    f.l_offsets_[static_cast<std::size_t>(j) + 1] =
        f.l_offsets_[static_cast<std::size_t>(j)] +
        l_nnz[static_cast<std::size_t>(j)];
  }
  f.l_idx_.resize(static_cast<std::size_t>(f.l_offsets_.back()));
  f.l_val_.resize(static_cast<std::size_t>(f.l_offsets_.back()));
  f.d_.assign(static_cast<std::size_t>(n), 0.0);

  // Numeric pass (up-looking).
  std::vector<double> y(static_cast<std::size_t>(n), 0.0);
  std::vector<vidx> pattern(static_cast<std::size_t>(n));
  std::vector<eidx> l_next(f.l_offsets_.begin(), f.l_offsets_.end() - 1);
  std::fill(flag.begin(), flag.end(), -1);
  for (vidx k = 0; k < n; ++k) {
    vidx top = n;
    flag[static_cast<std::size_t>(k)] = k;
    double dk = 0.0;
    for_each_lower(k, [&](vidx j, double v) {
      if (j == k) {
        dk += v;
        return;
      }
      y[static_cast<std::size_t>(j)] += v;
      vidx len = 0;
      while (flag[static_cast<std::size_t>(j)] != k) {
        pattern[static_cast<std::size_t>(len++)] = j;
        flag[static_cast<std::size_t>(j)] = k;
        j = parent[static_cast<std::size_t>(j)];
      }
      while (len > 0) pattern[static_cast<std::size_t>(--top)] =
          pattern[static_cast<std::size_t>(--len)];
    });
    f.d_[static_cast<std::size_t>(k)] = dk;
    for (vidx s = top; s < n; ++s) {
      const vidx j = pattern[static_cast<std::size_t>(s)];
      const double yj = y[static_cast<std::size_t>(j)];
      y[static_cast<std::size_t>(j)] = 0.0;
      for (eidx p = f.l_offsets_[static_cast<std::size_t>(j)];
           p < l_next[static_cast<std::size_t>(j)]; ++p) {
        y[static_cast<std::size_t>(f.l_idx_[static_cast<std::size_t>(p)])] -=
            f.l_val_[static_cast<std::size_t>(p)] * yj;
      }
      const double l_kj = yj / f.d_[static_cast<std::size_t>(j)];
      f.d_[static_cast<std::size_t>(k)] -= l_kj * yj;
      f.l_idx_[static_cast<std::size_t>(l_next[static_cast<std::size_t>(j)])] =
          k;
      f.l_val_[static_cast<std::size_t>(l_next[static_cast<std::size_t>(j)])] =
          l_kj;
      ++l_next[static_cast<std::size_t>(j)];
    }
    if (!(f.d_[static_cast<std::size_t>(k)] > 0.0)) {
      throw numeric_error("SparseLDL: non-positive pivot at step " +
                          std::to_string(k));
    }
  }
  return f;
}

std::vector<double> SparseLDL::solve(std::span<const double> b) const {
  HICOND_CHECK(b.size() == static_cast<std::size_t>(n_), "rhs size mismatch");
  std::vector<double> x(static_cast<std::size_t>(n_));
  for (vidx k = 0; k < n_; ++k) {
    x[static_cast<std::size_t>(k)] =
        b[static_cast<std::size_t>(perm_[static_cast<std::size_t>(k)])];
  }
  // L z = b (unit lower triangular, CSC columns).
  for (vidx j = 0; j < n_; ++j) {
    const double xj = x[static_cast<std::size_t>(j)];
    for (eidx p = l_offsets_[static_cast<std::size_t>(j)];
         p < l_offsets_[static_cast<std::size_t>(j) + 1]; ++p) {
      x[static_cast<std::size_t>(l_idx_[static_cast<std::size_t>(p)])] -=
          l_val_[static_cast<std::size_t>(p)] * xj;
    }
  }
  for (vidx j = 0; j < n_; ++j) {
    x[static_cast<std::size_t>(j)] /= d_[static_cast<std::size_t>(j)];
  }
  // L' x = z.
  for (vidx j = n_ - 1; j >= 0; --j) {
    double acc = x[static_cast<std::size_t>(j)];
    for (eidx p = l_offsets_[static_cast<std::size_t>(j)];
         p < l_offsets_[static_cast<std::size_t>(j) + 1]; ++p) {
      acc -= l_val_[static_cast<std::size_t>(p)] *
             x[static_cast<std::size_t>(l_idx_[static_cast<std::size_t>(p)])];
    }
    x[static_cast<std::size_t>(j)] = acc;
  }
  std::vector<double> result(static_cast<std::size_t>(n_));
  for (vidx k = 0; k < n_; ++k) {
    result[static_cast<std::size_t>(perm_[static_cast<std::size_t>(k)])] =
        x[static_cast<std::size_t>(k)];
  }
  return result;
}

namespace {

/// Laplacian of g restricted to all vertices except `ground`.
CsrMatrix grounded_laplacian(const Graph& g, vidx ground) {
  const vidx n = g.num_vertices();
  std::vector<std::tuple<vidx, vidx, double>> triplets;
  triplets.reserve(static_cast<std::size_t>(g.num_arcs() + n));
  auto reduced = [ground](vidx v) { return v < ground ? v : v - 1; };
  for (vidx v = 0; v < n; ++v) {
    if (v == ground) continue;
    triplets.emplace_back(reduced(v), reduced(v), g.vol(v));
    const auto nbrs = g.neighbors(v);
    const auto ws = g.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] == ground) continue;
      triplets.emplace_back(reduced(v), reduced(nbrs[i]), -ws[i]);
    }
  }
  return csr_from_triplets(n - 1, n - 1, triplets);
}

}  // namespace

LaplacianDirectSolver::LaplacianDirectSolver(const Graph& g, Ordering ordering)
    : n_(g.num_vertices()) {
  HICOND_CHECK(n_ >= 1, "empty graph");
  HICOND_SPAN("cholesky.factor");
  if (n_ == 1) return;
  // Ground the maximum-volume vertex (a numerically safe choice).
  grounded_ = 0;
  for (vidx v = 1; v < n_; ++v) {
    if (g.vol(v) > g.vol(grounded_)) grounded_ = v;
  }
  // The greedy min-degree implementation has a quadratic vertex-selection
  // loop; beyond a few thousand vertices RCM is the better trade.
  if (ordering == Ordering::min_degree && n_ > 4000) ordering = Ordering::rcm;
  ldl_ = SparseLDL::factor(grounded_laplacian(g, grounded_), ordering);
}

std::vector<double> LaplacianDirectSolver::solve(
    std::span<const double> b) const {
  std::vector<double> x(static_cast<std::size_t>(n_), 0.0);
  apply(b, x);
  return x;
}

void LaplacianDirectSolver::apply(std::span<const double> b,
                                  std::span<double> x) const {
  HICOND_CHECK(b.size() == static_cast<std::size_t>(n_), "rhs size mismatch");
  HICOND_CHECK(x.size() == static_cast<std::size_t>(n_), "x size mismatch");
  if (n_ == 1) {
    x[0] = 0.0;
    return;
  }
  // Project the rhs onto range(L) = {mean-free vectors} first: this makes
  // the grounded solve a true symmetric pseudo-inverse even for
  // inconsistent right-hand sides.
  double b_mean = 0.0;
  for (vidx v = 0; v < n_; ++v) b_mean += b[static_cast<std::size_t>(v)];
  b_mean /= static_cast<double>(n_);
  std::vector<double> rb;
  rb.reserve(static_cast<std::size_t>(n_) - 1);
  for (vidx v = 0; v < n_; ++v) {
    if (v != grounded_) rb.push_back(b[static_cast<std::size_t>(v)] - b_mean);
  }
  const std::vector<double> rx = ldl_.solve(rb);
  double mean = 0.0;
  std::size_t k = 0;
  for (vidx v = 0; v < n_; ++v) {
    if (v == grounded_) {
      x[static_cast<std::size_t>(v)] = 0.0;
    } else {
      x[static_cast<std::size_t>(v)] = rx[k++];
    }
    mean += x[static_cast<std::size_t>(v)];
  }
  mean /= static_cast<double>(n_);
  for (vidx v = 0; v < n_; ++v) x[static_cast<std::size_t>(v)] -= mean;
}

}  // namespace hicond
