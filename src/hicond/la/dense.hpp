// Small dense linear algebra: matrices, Cholesky, Laplacian pseudo-solves.
//
// These routines back the exact verification paths of the library (support
// numbers, Schur complements, Theorem 4.1 checks) on small and medium
// problems; the scalable paths use the sparse and iterative modules.
#pragma once

#include <span>
#include <vector>

#include "hicond/graph/graph.hpp"
#include "hicond/util/common.hpp"

namespace hicond {

/// Row-major dense matrix of doubles.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(vidx rows, vidx cols, double fill = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
              fill) {
    HICOND_CHECK(rows >= 0 && cols >= 0, "negative dimensions");
  }

  [[nodiscard]] static DenseMatrix identity(vidx n);

  [[nodiscard]] vidx rows() const noexcept { return rows_; }
  [[nodiscard]] vidx cols() const noexcept { return cols_; }

  double& operator()(vidx i, vidx j) {
    return data_[static_cast<std::size_t>(i) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(j)];
  }
  double operator()(vidx i, vidx j) const {
    return data_[static_cast<std::size_t>(i) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(j)];
  }

  [[nodiscard]] std::span<const double> data() const noexcept { return data_; }
  [[nodiscard]] std::span<double> data() noexcept { return data_; }

  /// y = this * x.
  void matvec(std::span<const double> x, std::span<double> y) const;

  [[nodiscard]] DenseMatrix transpose() const;

  /// Frobenius norm of (this - other).
  [[nodiscard]] double frobenius_distance(const DenseMatrix& other) const;

  friend DenseMatrix operator*(const DenseMatrix& a, const DenseMatrix& b);
  friend DenseMatrix operator+(const DenseMatrix& a, const DenseMatrix& b);
  friend DenseMatrix operator-(const DenseMatrix& a, const DenseMatrix& b);
  DenseMatrix& operator*=(double s);

 private:
  vidx rows_ = 0;
  vidx cols_ = 0;
  std::vector<double> data_;
};

/// Dense Laplacian of a graph.
[[nodiscard]] DenseMatrix dense_laplacian(const Graph& g);

/// Dense normalized Laplacian D^{-1/2} A_G D^{-1/2}; isolated vertices get a
/// zero row/column.
[[nodiscard]] DenseMatrix dense_normalized_laplacian(const Graph& g);

/// In-place Cholesky factorization A = L L' of an SPD matrix (lower triangle
/// returned, strict upper zeroed). Throws numeric_error on non-SPD input.
[[nodiscard]] DenseMatrix cholesky(DenseMatrix a);

/// Solve L L' x = b given the Cholesky factor L.
[[nodiscard]] std::vector<double> cholesky_solve(const DenseMatrix& l,
                                                 std::span<const double> b);

/// Solve A x = b for SPD A (factorize + solve).
[[nodiscard]] std::vector<double> spd_solve(const DenseMatrix& a,
                                            std::span<const double> b);

/// Pseudo-solve L x = b for a connected-graph Laplacian L: solves on the
/// subspace orthogonal to the constant vector by grounding the last vertex,
/// then re-centers x. b must (approximately) sum to zero.
[[nodiscard]] std::vector<double> laplacian_pseudo_solve_dense(
    const DenseMatrix& l, std::span<const double> b);

/// Matrix inverse via Cholesky (SPD only).
[[nodiscard]] DenseMatrix spd_inverse(const DenseMatrix& a);

}  // namespace hicond
