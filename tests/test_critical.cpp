#include "hicond/tree/critical.hpp"

#include <gtest/gtest.h>

#include "hicond/graph/generators.hpp"

namespace hicond {
namespace {

vidx count_critical(const std::vector<char>& flags) {
  vidx c = 0;
  for (char f : flags) c += f;
  return c;
}

TEST(Critical, StarCenterIsCritical) {
  const Graph g = gen::star(8);
  const RootedForest f = RootedForest::build(g, 0);
  const auto critical = critical_vertices(f);
  EXPECT_TRUE(critical[0]);
  for (vidx v = 1; v < 8; ++v) EXPECT_FALSE(critical[static_cast<std::size_t>(v)]);
}

TEST(Critical, PathHasPeriodicCriticals) {
  // Rooted path: subtree sizes n, n-1, ..., 1. Critical where the ceiling
  // strictly drops: sizes congruent to 1 mod 3 (except leaves).
  const Graph g = gen::path(10);
  const RootedForest f = RootedForest::build(g, 0);
  const auto critical = critical_vertices(f);
  // Vertex v has subtree size 10 - v; critical iff (10-v) % 3 == 1, v < 9.
  for (vidx v = 0; v < 9; ++v) {
    const bool expected = ((10 - v) % 3 == 1) || v == 0;  // root marked too
    EXPECT_EQ(static_cast<bool>(critical[static_cast<std::size_t>(v)]),
              expected)
        << "v=" << v;
  }
  EXPECT_FALSE(critical[9]);  // leaf
}

TEST(Critical, CountIsAtMostTwoThirds) {
  // Paper: the number of 3-critical vertices is at most 2n/3 (+ the root we
  // force). Validate across many random trees.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Graph g = gen::random_tree(120, gen::WeightSpec::unit(), seed);
    const RootedForest f = RootedForest::build(g);
    const auto critical = critical_vertices(f);
    EXPECT_LE(count_critical(critical), 2 * 120 / 3 + 1) << "seed " << seed;
  }
}

TEST(Critical, LeavesAreNeverCritical) {
  const Graph g = gen::random_tree(80, gen::WeightSpec::unit(), 3);
  const RootedForest f = RootedForest::build(g);
  const auto critical = critical_vertices(f);
  for (vidx v = 0; v < 80; ++v) {
    if (f.is_leaf(v)) {
      EXPECT_FALSE(critical[static_cast<std::size_t>(v)]);
    }
  }
}

TEST(Critical, RejectsBadParameter) {
  const Graph g = gen::path(4);
  const RootedForest f = RootedForest::build(g);
  EXPECT_THROW((void)critical_vertices(f, 1), invalid_argument_error);
}

TEST(Bridges, PartitionNonCriticalVertices) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Graph g = gen::random_tree(100, gen::WeightSpec::unit(), seed);
    const RootedForest f = RootedForest::build(g);
    const auto critical = critical_vertices(f);
    const auto bridges = bridge_decomposition(g, critical);
    std::vector<int> covered(100, 0);
    for (const auto& b : bridges) {
      for (vidx v : b.interior) {
        EXPECT_FALSE(critical[static_cast<std::size_t>(v)]);
        ++covered[static_cast<std::size_t>(v)];
      }
      for (vidx a : b.attachments) {
        EXPECT_TRUE(critical[static_cast<std::size_t>(a)]);
      }
    }
    for (vidx v = 0; v < 100; ++v) {
      EXPECT_EQ(covered[static_cast<std::size_t>(v)],
                critical[static_cast<std::size_t>(v)] ? 0 : 1);
    }
  }
}

TEST(Bridges, InteriorsAreSmall) {
  // The 3-bridge structure keeps interiors O(1); empirically they stay <= 3
  // on random trees (the generic fallback handles anything larger).
  vidx max_interior = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const Graph g = gen::random_tree(150, gen::WeightSpec::unit(), seed);
    const RootedForest f = RootedForest::build(g);
    const auto bridges = bridge_decomposition(g, critical_vertices(f));
    for (const auto& b : bridges) {
      max_interior = std::max(max_interior,
                              static_cast<vidx>(b.interior.size()));
    }
  }
  EXPECT_LE(max_interior, 4);
}

TEST(Bridges, StarBridgesAreSingletons) {
  const Graph g = gen::star(9);
  const RootedForest f = RootedForest::build(g, 0);
  const auto bridges = bridge_decomposition(g, critical_vertices(f));
  EXPECT_EQ(bridges.size(), 8u);
  for (const auto& b : bridges) {
    EXPECT_EQ(b.interior.size(), 1u);
    EXPECT_EQ(b.attachments, std::vector<vidx>{0});
  }
}

}  // namespace
}  // namespace hicond
