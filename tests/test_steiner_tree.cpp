#include "hicond/precond/steiner_tree.hpp"

#include <gtest/gtest.h>

#include "hicond/graph/connectivity.hpp"
#include "hicond/graph/generators.hpp"
#include "hicond/la/dense_eigen.hpp"
#include "hicond/la/vector_ops.hpp"
#include "hicond/precond/schur.hpp"
#include "hicond/precond/steiner.hpp"
#include "hicond/precond/support.hpp"
#include "hicond/util/rng.hpp"

namespace hicond {
namespace {

TEST(SteinerTree, StructureIsATree) {
  const Graph g = gen::grid2d(10, 10, gen::WeightSpec::uniform(1.0, 2.0), 3);
  const LaminarHierarchy h = build_hierarchy(g, {.coarsest_size = 8});
  const SteinerTreePreconditioner p = SteinerTreePreconditioner::build(h);
  EXPECT_TRUE(is_tree(p.tree()));
  EXPECT_EQ(p.num_original(), 100);
  EXPECT_GT(p.num_steiner(), 0);
  // Leaves of the tree are exactly the original vertices.
  for (vidx v = 0; v < 100; ++v) {
    EXPECT_EQ(p.tree().degree(v), 1);
    // Leaf weight equals vol_A(v) (the Definition 3.1 rule at level 0).
    EXPECT_DOUBLE_EQ(p.tree().weights(v)[0], g.vol(v));
  }
}

TEST(SteinerTree, TrivialHierarchyIsTheMatchedStar) {
  // With no levels the support tree degenerates to Lemma 3.4's star.
  const Graph g = gen::grid2d(3, 3, gen::WeightSpec::uniform(1.0, 2.0), 5);
  const LaminarHierarchy h = build_hierarchy(g, {.coarsest_size = 100});
  ASSERT_EQ(h.num_levels(), 0);
  const SteinerTreePreconditioner p = SteinerTreePreconditioner::build(h);
  const Graph star = matched_star(g);
  EXPECT_EQ(p.tree().edge_list(), star.edge_list());
}

TEST(SteinerTree, ApplyIsSymmetricAndLinear) {
  const Graph g = gen::oct_volume(6, 6, 3, {.field_orders = 2.0}, 7);
  const LaminarHierarchy h = build_hierarchy(g, {.coarsest_size = 10});
  const SteinerTreePreconditioner p = SteinerTreePreconditioner::build(h);
  const auto n = static_cast<std::size_t>(g.num_vertices());
  Rng rng(9);
  std::vector<double> r1(n);
  std::vector<double> r2(n);
  for (auto& v : r1) v = rng.uniform(-1.0, 1.0);
  for (auto& v : r2) v = rng.uniform(-1.0, 1.0);
  std::vector<double> z1(n);
  std::vector<double> z2(n);
  std::vector<double> z12(n);
  p.apply(r1, z1);
  p.apply(r2, z2);
  EXPECT_NEAR(la::dot(r2, z1), la::dot(r1, z2), 1e-9);
  std::vector<double> r12(n);
  for (std::size_t i = 0; i < n; ++i) r12[i] = r1[i] + r2[i];
  p.apply(r12, z12);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(z12[i], z1[i] + z2[i], 1e-9);
  }
}

TEST(SteinerTree, InvertsItsOwnSchurComplement) {
  const Graph g = gen::grid2d(4, 4, gen::WeightSpec::uniform(1.0, 2.0), 11);
  const LaminarHierarchy h = build_hierarchy(
      g, {.contraction = {.max_cluster_size = 2}, .coarsest_size = 3});
  const SteinerTreePreconditioner p = SteinerTreePreconditioner::build(h);
  // Dense Schur complement of the tree onto the original vertices.
  std::vector<vidx> eliminate;
  for (vidx v = 16; v < p.tree().num_vertices(); ++v) eliminate.push_back(v);
  const DenseMatrix bt = schur_complement_dense(p.tree(), eliminate);
  Rng rng(13);
  std::vector<double> r(16);
  for (auto& v : r) v = rng.uniform(-1.0, 1.0);
  la::remove_mean(r);
  std::vector<double> z(16);
  p.apply(r, z);
  std::vector<double> back(16);
  bt.matvec(z, back);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_NEAR(back[i], r[i], 1e-8);
}

TEST(SteinerTree, PreconditionsPcg) {
  const Graph g = gen::grid2d(16, 16, gen::WeightSpec::uniform(1.0, 3.0), 13);
  const vidx n = g.num_vertices();
  const LaminarHierarchy h = build_hierarchy(g, {.coarsest_size = 16});
  const SteinerTreePreconditioner p = SteinerTreePreconditioner::build(h);
  auto a = [&g](std::span<const double> x, std::span<double> y) {
    g.laplacian_apply(x, y);
  };
  Rng rng(15);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  la::remove_mean(b);
  std::vector<double> x_plain(static_cast<std::size_t>(n), 0.0);
  std::vector<double> x_tree(static_cast<std::size_t>(n), 0.0);
  const CgOptions opt{.max_iterations = 3000, .rel_tolerance = 1e-8,
                      .project_constant = true};
  const auto plain = cg_solve(a, b, x_plain, opt);
  const auto tree = pcg_solve(a, p.as_operator(), b, x_tree, opt);
  EXPECT_TRUE(plain.converged);
  EXPECT_TRUE(tree.converged);
  EXPECT_LT(tree.iterations, plain.iterations);
}

TEST(SteinerTree, SteinerGraphBeatsSteinerTree) {
  // The paper's pitch: adding the quotient edges (Definition 3.1) improves
  // the support tree. Compare exact condition numbers on a small graph with
  // a single-level hierarchy so both use the same clustering.
  const Graph g = gen::grid2d(5, 4, gen::WeightSpec::lognormal(0.0, 1.0), 17);
  const LaminarHierarchy h = build_hierarchy(
      g, {.contraction = {.max_cluster_size = 3}, .coarsest_size = 1});
  ASSERT_GE(h.num_levels(), 1);
  // Steiner graph on the first-level decomposition.
  const double kappa_graph =
      steiner_condition_dense(g, h.levels.front().decomposition);
  // Steiner tree over the full hierarchy.
  const SteinerTreePreconditioner p = SteinerTreePreconditioner::build(h);
  std::vector<vidx> eliminate;
  for (vidx v = 20; v < p.tree().num_vertices(); ++v) eliminate.push_back(v);
  const DenseMatrix bt = schur_complement_dense(p.tree(), eliminate);
  const auto eig = generalized_eigen_laplacian(bt, dense_laplacian(g));
  const double kappa_tree = eig.values.back() / eig.values.front();
  EXPECT_LT(kappa_graph, kappa_tree);
}

TEST(SteinerTree, RejectsDisconnectedGraph) {
  std::vector<WeightedEdge> edges{{0, 1, 1.0}, {2, 3, 1.0}};
  const Graph g(4, edges);
  const LaminarHierarchy h = build_hierarchy(g, {.coarsest_size = 1});
  EXPECT_THROW((void)SteinerTreePreconditioner::build(h),
               invalid_argument_error);
}

}  // namespace
}  // namespace hicond
