file(REMOVE_RECURSE
  "CMakeFiles/spectral_clusters.dir/spectral_clusters.cpp.o"
  "CMakeFiles/spectral_clusters.dir/spectral_clusters.cpp.o.d"
  "spectral_clusters"
  "spectral_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectral_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
