
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hicond/graph/builder.cpp" "src/CMakeFiles/hicond.dir/hicond/graph/builder.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/graph/builder.cpp.o.d"
  "/root/repo/src/hicond/graph/closure.cpp" "src/CMakeFiles/hicond.dir/hicond/graph/closure.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/graph/closure.cpp.o.d"
  "/root/repo/src/hicond/graph/conductance.cpp" "src/CMakeFiles/hicond.dir/hicond/graph/conductance.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/graph/conductance.cpp.o.d"
  "/root/repo/src/hicond/graph/connectivity.cpp" "src/CMakeFiles/hicond.dir/hicond/graph/connectivity.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/graph/connectivity.cpp.o.d"
  "/root/repo/src/hicond/graph/generators.cpp" "src/CMakeFiles/hicond.dir/hicond/graph/generators.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/graph/generators.cpp.o.d"
  "/root/repo/src/hicond/graph/graph.cpp" "src/CMakeFiles/hicond.dir/hicond/graph/graph.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/graph/graph.cpp.o.d"
  "/root/repo/src/hicond/graph/io.cpp" "src/CMakeFiles/hicond.dir/hicond/graph/io.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/graph/io.cpp.o.d"
  "/root/repo/src/hicond/graph/quotient.cpp" "src/CMakeFiles/hicond.dir/hicond/graph/quotient.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/graph/quotient.cpp.o.d"
  "/root/repo/src/hicond/la/cg.cpp" "src/CMakeFiles/hicond.dir/hicond/la/cg.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/la/cg.cpp.o.d"
  "/root/repo/src/hicond/la/chebyshev.cpp" "src/CMakeFiles/hicond.dir/hicond/la/chebyshev.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/la/chebyshev.cpp.o.d"
  "/root/repo/src/hicond/la/csr.cpp" "src/CMakeFiles/hicond.dir/hicond/la/csr.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/la/csr.cpp.o.d"
  "/root/repo/src/hicond/la/dense.cpp" "src/CMakeFiles/hicond.dir/hicond/la/dense.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/la/dense.cpp.o.d"
  "/root/repo/src/hicond/la/dense_eigen.cpp" "src/CMakeFiles/hicond.dir/hicond/la/dense_eigen.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/la/dense_eigen.cpp.o.d"
  "/root/repo/src/hicond/la/dirichlet.cpp" "src/CMakeFiles/hicond.dir/hicond/la/dirichlet.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/la/dirichlet.cpp.o.d"
  "/root/repo/src/hicond/la/lanczos.cpp" "src/CMakeFiles/hicond.dir/hicond/la/lanczos.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/la/lanczos.cpp.o.d"
  "/root/repo/src/hicond/la/partial_cholesky.cpp" "src/CMakeFiles/hicond.dir/hicond/la/partial_cholesky.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/la/partial_cholesky.cpp.o.d"
  "/root/repo/src/hicond/la/sdd.cpp" "src/CMakeFiles/hicond.dir/hicond/la/sdd.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/la/sdd.cpp.o.d"
  "/root/repo/src/hicond/la/sparse_cholesky.cpp" "src/CMakeFiles/hicond.dir/hicond/la/sparse_cholesky.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/la/sparse_cholesky.cpp.o.d"
  "/root/repo/src/hicond/la/spgemm.cpp" "src/CMakeFiles/hicond.dir/hicond/la/spgemm.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/la/spgemm.cpp.o.d"
  "/root/repo/src/hicond/la/tree_solver.cpp" "src/CMakeFiles/hicond.dir/hicond/la/tree_solver.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/la/tree_solver.cpp.o.d"
  "/root/repo/src/hicond/la/vector_ops.cpp" "src/CMakeFiles/hicond.dir/hicond/la/vector_ops.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/la/vector_ops.cpp.o.d"
  "/root/repo/src/hicond/partition/decomposition.cpp" "src/CMakeFiles/hicond.dir/hicond/partition/decomposition.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/partition/decomposition.cpp.o.d"
  "/root/repo/src/hicond/partition/fixed_degree.cpp" "src/CMakeFiles/hicond.dir/hicond/partition/fixed_degree.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/partition/fixed_degree.cpp.o.d"
  "/root/repo/src/hicond/partition/hierarchy.cpp" "src/CMakeFiles/hicond.dir/hicond/partition/hierarchy.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/partition/hierarchy.cpp.o.d"
  "/root/repo/src/hicond/partition/planar.cpp" "src/CMakeFiles/hicond.dir/hicond/partition/planar.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/partition/planar.cpp.o.d"
  "/root/repo/src/hicond/partition/refinement.cpp" "src/CMakeFiles/hicond.dir/hicond/partition/refinement.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/partition/refinement.cpp.o.d"
  "/root/repo/src/hicond/partition/spectral_partition.cpp" "src/CMakeFiles/hicond.dir/hicond/partition/spectral_partition.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/partition/spectral_partition.cpp.o.d"
  "/root/repo/src/hicond/precond/embedding.cpp" "src/CMakeFiles/hicond.dir/hicond/precond/embedding.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/precond/embedding.cpp.o.d"
  "/root/repo/src/hicond/precond/gremban.cpp" "src/CMakeFiles/hicond.dir/hicond/precond/gremban.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/precond/gremban.cpp.o.d"
  "/root/repo/src/hicond/precond/multilevel.cpp" "src/CMakeFiles/hicond.dir/hicond/precond/multilevel.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/precond/multilevel.cpp.o.d"
  "/root/repo/src/hicond/precond/schur.cpp" "src/CMakeFiles/hicond.dir/hicond/precond/schur.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/precond/schur.cpp.o.d"
  "/root/repo/src/hicond/precond/steiner.cpp" "src/CMakeFiles/hicond.dir/hicond/precond/steiner.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/precond/steiner.cpp.o.d"
  "/root/repo/src/hicond/precond/steiner_tree.cpp" "src/CMakeFiles/hicond.dir/hicond/precond/steiner_tree.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/precond/steiner_tree.cpp.o.d"
  "/root/repo/src/hicond/precond/subgraph.cpp" "src/CMakeFiles/hicond.dir/hicond/precond/subgraph.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/precond/subgraph.cpp.o.d"
  "/root/repo/src/hicond/precond/support.cpp" "src/CMakeFiles/hicond.dir/hicond/precond/support.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/precond/support.cpp.o.d"
  "/root/repo/src/hicond/solver.cpp" "src/CMakeFiles/hicond.dir/hicond/solver.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/solver.cpp.o.d"
  "/root/repo/src/hicond/spectral/eigensolver.cpp" "src/CMakeFiles/hicond.dir/hicond/spectral/eigensolver.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/spectral/eigensolver.cpp.o.d"
  "/root/repo/src/hicond/spectral/normalized.cpp" "src/CMakeFiles/hicond.dir/hicond/spectral/normalized.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/spectral/normalized.cpp.o.d"
  "/root/repo/src/hicond/spectral/portrait.cpp" "src/CMakeFiles/hicond.dir/hicond/spectral/portrait.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/spectral/portrait.cpp.o.d"
  "/root/repo/src/hicond/spectral/random_walk.cpp" "src/CMakeFiles/hicond.dir/hicond/spectral/random_walk.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/spectral/random_walk.cpp.o.d"
  "/root/repo/src/hicond/spectral/sparsify.cpp" "src/CMakeFiles/hicond.dir/hicond/spectral/sparsify.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/spectral/sparsify.cpp.o.d"
  "/root/repo/src/hicond/tree/critical.cpp" "src/CMakeFiles/hicond.dir/hicond/tree/critical.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/tree/critical.cpp.o.d"
  "/root/repo/src/hicond/tree/euler.cpp" "src/CMakeFiles/hicond.dir/hicond/tree/euler.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/tree/euler.cpp.o.d"
  "/root/repo/src/hicond/tree/low_stretch.cpp" "src/CMakeFiles/hicond.dir/hicond/tree/low_stretch.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/tree/low_stretch.cpp.o.d"
  "/root/repo/src/hicond/tree/mst.cpp" "src/CMakeFiles/hicond.dir/hicond/tree/mst.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/tree/mst.cpp.o.d"
  "/root/repo/src/hicond/tree/rooted_tree.cpp" "src/CMakeFiles/hicond.dir/hicond/tree/rooted_tree.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/tree/rooted_tree.cpp.o.d"
  "/root/repo/src/hicond/tree/tree_decomposition.cpp" "src/CMakeFiles/hicond.dir/hicond/tree/tree_decomposition.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/tree/tree_decomposition.cpp.o.d"
  "/root/repo/src/hicond/tree/tree_splitting.cpp" "src/CMakeFiles/hicond.dir/hicond/tree/tree_splitting.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/tree/tree_splitting.cpp.o.d"
  "/root/repo/src/hicond/util/parallel.cpp" "src/CMakeFiles/hicond.dir/hicond/util/parallel.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/util/parallel.cpp.o.d"
  "/root/repo/src/hicond/util/rng.cpp" "src/CMakeFiles/hicond.dir/hicond/util/rng.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/util/rng.cpp.o.d"
  "/root/repo/src/hicond/util/stats.cpp" "src/CMakeFiles/hicond.dir/hicond/util/stats.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/util/stats.cpp.o.d"
  "/root/repo/src/hicond/util/timer.cpp" "src/CMakeFiles/hicond.dir/hicond/util/timer.cpp.o" "gcc" "src/CMakeFiles/hicond.dir/hicond/util/timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
