// Untrusted integers that do flow through a sanitizer before any sink,
// trusted sizes that never were tainted, and the pragma escape hatch:
// no findings.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hicond {
void report_check_failure(const char* what);
std::size_t checked_size(std::uint64_t n, std::uint64_t cap,
                         const char* what);
}  // namespace hicond

#define HICOND_CHECK(expr, what)                       \
  do {                                                 \
    if (!(expr)) ::hicond::report_check_failure(what); \
  } while (false)

struct Reader {
  std::uint32_t u32(const char* what);
  std::uint64_t u64(const char* what);
};

struct JsonValue {
  double number = 0.0;
};

double number_or(const JsonValue& object, const char* name, double fallback);

void sanitized_by_check(Reader& r, std::vector<int>& v) {
  const std::uint32_t n = r.u32("count");
  HICOND_CHECK(n <= 4096, "count out of range");
  v.resize(n);
}

void sanitized_by_checked_size(Reader& r, std::vector<int>& v) {
  const std::uint64_t n = r.u64("count");
  const std::size_t capped = hicond::checked_size(n, 1024, "count");
  v.resize(capped);
}

void sanitized_number_or(const JsonValue& spec, std::vector<double>& rhs) {
  const auto count = static_cast<int>(number_or(spec, "count", 1.0));
  HICOND_CHECK(count >= 1 && count <= 64, "count out of range");
  rhs.reserve(static_cast<std::size_t>(count));
}

void sink_inside_the_check_is_the_guard(Reader& r, std::vector<bool>& seen) {
  const std::uint32_t tag = r.u32("tag");
  HICOND_CHECK(tag < 8, "tag out of range");
  HICOND_CHECK(!seen[tag], "duplicate section tag");
  seen[tag] = true;
}

void trusted_sizes_do_not_fire(const std::vector<double>& input,
                               std::vector<double>& out) {
  out.reserve(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    out.push_back(input[i]);
  }
  out.resize(128);
}

void overwritten_taint_is_gone(Reader& r, std::vector<int>& v) {
  std::uint32_t n = r.u32("count");
  n = 16;  // plain reassignment replaces the tainted value
  v.resize(n);
}

void suppressed_sink(Reader& r, std::vector<int>& v) {
  const std::uint32_t n = r.u32("count");
  // hicond-tidy: allow(untrusted-size)
  v.resize(n);
}
