#include "hicond/tree/rooted_tree.hpp"

#include <cmath>

#include "hicond/graph/connectivity.hpp"
#include "hicond/util/float_eq.hpp"

namespace hicond {

RootedForest RootedForest::from_parents(std::span<const vidx> parents,
                                        std::span<const double> weights) {
  const auto n_size = parents.size();
  const auto n = static_cast<vidx>(n_size);
  HICOND_CHECK(weights.empty() || weights.size() == n_size,
               "parent weight array size mismatch");
  RootedForest f;
  f.parent_.assign(parents.begin(), parents.end());
  f.parent_weight_.assign(n_size, 1.0);
  for (vidx v = 0; v < n; ++v) {
    const vidx p = parents[static_cast<std::size_t>(v)];
    HICOND_CHECK(p >= -1 && p < n, "parent index out of range");
    HICOND_CHECK(p != v, "vertex cannot be its own parent");
    if (p == -1) {
      f.roots_.push_back(v);
    } else if (!weights.empty()) {
      const double w = weights[static_cast<std::size_t>(v)];
      HICOND_CHECK(std::isfinite(w) && w > 0.0,
                   "parent edge weights must be positive and finite");
      f.parent_weight_[static_cast<std::size_t>(v)] = w;
    }
  }
  for (vidx r : f.roots_) f.parent_weight_[static_cast<std::size_t>(r)] = 0.0;

  // Child lists (CSR), then BFS from the roots. A parent array is acyclic
  // exactly when every vertex is reachable from a root.
  f.child_offsets_.assign(n_size + 1, 0);
  for (vidx v = 0; v < n; ++v) {
    const vidx p = f.parent_[static_cast<std::size_t>(v)];
    if (p >= 0) ++f.child_offsets_[static_cast<std::size_t>(p) + 1];
  }
  for (vidx v = 0; v < n; ++v) {
    f.child_offsets_[static_cast<std::size_t>(v) + 1] +=
        f.child_offsets_[static_cast<std::size_t>(v)];
  }
  f.children_.resize(n_size - f.roots_.size());
  {
    std::vector<eidx> cursor(f.child_offsets_.begin(),
                             f.child_offsets_.end() - 1);
    for (vidx v = 0; v < n; ++v) {
      const vidx p = f.parent_[static_cast<std::size_t>(v)];
      if (p >= 0) {
        f.children_[static_cast<std::size_t>(
            cursor[static_cast<std::size_t>(p)]++)] = v;
      }
    }
  }
  f.order_.reserve(n_size);
  for (vidx r : f.roots_) f.order_.push_back(r);
  for (std::size_t head = 0; head < f.order_.size(); ++head) {
    for (vidx c : f.children(f.order_[head])) f.order_.push_back(c);
  }
  HICOND_CHECK(f.order_.size() == n_size,
               "cyclic parent array: vertices unreachable from any root");

  f.subtree_size_.assign(n_size, 1);
  for (std::size_t i = f.order_.size(); i-- > 0;) {
    const vidx v = f.order_[i];
    const vidx p = f.parent_[static_cast<std::size_t>(v)];
    if (p >= 0) {
      f.subtree_size_[static_cast<std::size_t>(p)] +=
          f.subtree_size_[static_cast<std::size_t>(v)];
    }
  }
  return f;
}

void RootedForest::validate() const {
  const std::size_t n = parent_.size();
  HICOND_CHECK(parent_weight_.size() == n && subtree_size_.size() == n &&
                   child_offsets_.size() == n + 1 && order_.size() == n,
               "rooted forest array sizes inconsistent");
  HICOND_CHECK(children_.size() == n - roots_.size(),
               "child list size inconsistent with root count");
  std::vector<eidx> child_count(n, 0);
  std::size_t num_roots = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const vidx p = parent_[v];
    HICOND_CHECK(p >= -1 && p < static_cast<vidx>(n),
                 "parent index out of range");
    HICOND_CHECK(p != static_cast<vidx>(v), "vertex cannot be its own parent");
    if (p == -1) {
      ++num_roots;
      HICOND_CHECK(exact_zero(parent_weight_[v]),
                   "root must have no parent edge");
    } else {
      ++child_count[static_cast<std::size_t>(p)];
      HICOND_CHECK(std::isfinite(parent_weight_[v]) && parent_weight_[v] > 0.0,
                   "parent edge weights must be positive and finite");
    }
  }
  HICOND_CHECK(num_roots == roots_.size(), "recorded roots inconsistent");
  for (vidx r : roots_) {
    HICOND_CHECK(r >= 0 && static_cast<std::size_t>(r) < n &&
                     parent_[static_cast<std::size_t>(r)] == -1,
                 "recorded root is not a root");
  }
  // Top-down order must be a permutation that places parents before
  // children; its existence certifies acyclicity.
  std::vector<eidx> position(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    const vidx v = order_[i];
    HICOND_CHECK(v >= 0 && static_cast<std::size_t>(v) < n &&
                     position[static_cast<std::size_t>(v)] == -1,
                 "top-down order is not a permutation");
    position[static_cast<std::size_t>(v)] = static_cast<eidx>(i);
  }
  for (std::size_t v = 0; v < n; ++v) {
    const vidx p = parent_[v];
    if (p >= 0) {
      HICOND_CHECK(position[static_cast<std::size_t>(p)] <
                       position[v],
                   "cyclic parent array: parent ordered after child");
    }
  }
  // Child CSR and subtree sizes must match the parent array.
  std::vector<eidx> subtree(n, 1);
  for (std::size_t i = n; i-- > 0;) {
    const vidx v = order_[i];
    const vidx p = parent_[static_cast<std::size_t>(v)];
    if (p >= 0) {
      subtree[static_cast<std::size_t>(p)] +=
          subtree[static_cast<std::size_t>(v)];
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    HICOND_CHECK(child_offsets_[v + 1] - child_offsets_[v] == child_count[v],
                 "child list inconsistent with parent array");
    HICOND_CHECK(subtree[v] == static_cast<eidx>(subtree_size_[v]),
                 "subtree sizes inconsistent with parent array");
  }
  for (std::size_t v = 0; v < n; ++v) {
    for (vidx c : children(static_cast<vidx>(v))) {
      HICOND_CHECK(c >= 0 && static_cast<std::size_t>(c) < n &&
                       parent_[static_cast<std::size_t>(c)] ==
                           static_cast<vidx>(v),
                   "child list entry does not point back to parent");
    }
  }
}

RootedForest RootedForest::build(const Graph& g, vidx preferred_root) {
  HICOND_CHECK(is_forest(g), "RootedForest requires an acyclic graph");
  const vidx n = g.num_vertices();
  RootedForest f;
  f.parent_.assign(static_cast<std::size_t>(n), -2);  // -2 = unvisited
  f.parent_weight_.assign(static_cast<std::size_t>(n), 0.0);
  f.order_.reserve(static_cast<std::size_t>(n));

  auto bfs_from = [&](vidx root) {
    f.parent_[static_cast<std::size_t>(root)] = -1;
    f.roots_.push_back(root);
    const std::size_t start = f.order_.size();
    f.order_.push_back(root);
    for (std::size_t head = start; head < f.order_.size(); ++head) {
      const vidx v = f.order_[head];
      const auto nbrs = g.neighbors(v);
      const auto ws = g.weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (f.parent_[static_cast<std::size_t>(nbrs[i])] == -2) {
          f.parent_[static_cast<std::size_t>(nbrs[i])] = v;
          f.parent_weight_[static_cast<std::size_t>(nbrs[i])] = ws[i];
          f.order_.push_back(nbrs[i]);
        }
      }
    }
  };

  if (preferred_root >= 0 && preferred_root < n) bfs_from(preferred_root);
  for (vidx v = 0; v < n; ++v) {
    if (f.parent_[static_cast<std::size_t>(v)] == -2) bfs_from(v);
  }

  // Subtree sizes by reverse BFS order.
  f.subtree_size_.assign(static_cast<std::size_t>(n), 1);
  for (std::size_t i = f.order_.size(); i-- > 0;) {
    const vidx v = f.order_[i];
    const vidx p = f.parent_[static_cast<std::size_t>(v)];
    if (p >= 0) {
      f.subtree_size_[static_cast<std::size_t>(p)] +=
          f.subtree_size_[static_cast<std::size_t>(v)];
    }
  }

  // Child lists (CSR).
  f.child_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (vidx v = 0; v < n; ++v) {
    const vidx p = f.parent_[static_cast<std::size_t>(v)];
    if (p >= 0) ++f.child_offsets_[static_cast<std::size_t>(p) + 1];
  }
  for (vidx v = 0; v < n; ++v) {
    f.child_offsets_[static_cast<std::size_t>(v) + 1] +=
        f.child_offsets_[static_cast<std::size_t>(v)];
  }
  f.children_.resize(static_cast<std::size_t>(n) - f.roots_.size());
  std::vector<eidx> cursor(f.child_offsets_.begin(), f.child_offsets_.end() - 1);
  for (vidx v = 0; v < n; ++v) {
    const vidx p = f.parent_[static_cast<std::size_t>(v)];
    if (p >= 0) {
      f.children_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(p)]++)] =
          v;
    }
  }
  HICOND_RUN_VALIDATION(expensive, f.validate());
  return f;
}

}  // namespace hicond
