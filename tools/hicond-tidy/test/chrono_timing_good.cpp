// Timing through the project's Timer facade (stubbed), plus one
// annotated direct use: no findings.

#include <chrono>

struct Timer {
  double elapsed_ms() const { return 0.0; }
};

double measure() {
  const Timer t;
  return t.elapsed_ms();
}

long long annotated_epoch_ns() {
  // hicond-tidy: allow(chrono-timing)
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
