// Hidden-global-state randomness from the C library.

#include <cstdlib>

int noisy() {
  std::srand(42);  // expect: no-std-rand
  return std::rand();  // expect: no-std-rand
}
