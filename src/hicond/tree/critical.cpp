#include "hicond/tree/critical.hpp"

#include <algorithm>

namespace hicond {

std::vector<char> critical_vertices(const RootedForest& forest, int m) {
  HICOND_CHECK(m >= 2, "criticality parameter must be >= 2");
  const vidx n = forest.num_vertices();
  std::vector<char> critical(static_cast<std::size_t>(n), 0);
  auto bucket = [m](vidx size) {
    return (static_cast<long long>(size) + m - 1) / m;
  };
  for (vidx v = 0; v < n; ++v) {
    if (forest.is_leaf(v)) continue;
    bool is_critical = true;
    for (vidx w : forest.children(v)) {
      if (bucket(forest.subtree_size(v)) <= bucket(forest.subtree_size(w))) {
        is_critical = false;
        break;
      }
    }
    if (is_critical) critical[static_cast<std::size_t>(v)] = 1;
  }
  // Roots of non-trivial components anchor the decomposition even when the
  // ceiling condition ties (e.g. a 3-vertex path); mark them critical.
  for (vidx r : forest.roots()) {
    if (!forest.is_leaf(r)) critical[static_cast<std::size_t>(r)] = 1;
  }
  return critical;
}

std::vector<Bridge> bridge_decomposition(const Graph& tree,
                                         std::span<const char> critical) {
  const vidx n = tree.num_vertices();
  HICOND_CHECK(critical.size() == static_cast<std::size_t>(n),
               "critical flag size mismatch");
  std::vector<vidx> component(static_cast<std::size_t>(n), -1);
  std::vector<Bridge> bridges;
  std::vector<vidx> stack;
  for (vidx s = 0; s < n; ++s) {
    if (critical[static_cast<std::size_t>(s)] ||
        component[static_cast<std::size_t>(s)] != -1) {
      continue;
    }
    const vidx id = static_cast<vidx>(bridges.size());
    bridges.emplace_back();
    Bridge& b = bridges.back();
    component[static_cast<std::size_t>(s)] = id;
    stack.push_back(s);
    while (!stack.empty()) {
      const vidx v = stack.back();
      stack.pop_back();
      b.interior.push_back(v);
      for (vidx u : tree.neighbors(v)) {
        if (critical[static_cast<std::size_t>(u)]) {
          b.attachments.push_back(u);
        } else if (component[static_cast<std::size_t>(u)] == -1) {
          component[static_cast<std::size_t>(u)] = id;
          stack.push_back(u);
        }
      }
    }
    std::sort(b.interior.begin(), b.interior.end());
    std::sort(b.attachments.begin(), b.attachments.end());
    b.attachments.erase(
        std::unique(b.attachments.begin(), b.attachments.end()),
        b.attachments.end());
  }
  return bridges;
}

}  // namespace hicond
