#include "hicond/partition/fixed_degree.hpp"

#include <gtest/gtest.h>

#include "hicond/graph/connectivity.hpp"
#include "hicond/graph/generators.hpp"
#include "hicond/graph/quotient.hpp"

namespace hicond {
namespace {

TEST(HeaviestEdgeForest, IsAForest) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Graph g =
        gen::grid2d(10, 10, gen::WeightSpec::uniform(1.0, 2.0), seed);
    const Graph f = heaviest_incident_edge_forest(g, seed);
    EXPECT_TRUE(is_forest(f)) << "seed " << seed;
  }
}

TEST(HeaviestEdgeForest, EveryNonIsolatedVertexCovered) {
  const Graph g = gen::grid3d(5, 5, 5, gen::WeightSpec::uniform(1.0, 3.0), 3);
  const Graph f = heaviest_incident_edge_forest(g, 3);
  for (vidx v = 0; v < g.num_vertices(); ++v) {
    EXPECT_GE(f.degree(v), 1) << "v=" << v;
  }
}

TEST(HeaviestEdgeForest, IsUnimodal) {
  // Section 3.1: the kept-edge forest has no path with a local-minimum edge.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Graph g = gen::random_planar_triangulation(
        200, gen::WeightSpec::uniform(1.0, 5.0), seed);
    const Graph f = heaviest_incident_edge_forest(g, seed);
    EXPECT_TRUE(is_unimodal_forest(f)) << "seed " << seed;
  }
}

TEST(HeaviestEdgeForest, UnitWeightsWithPerturbationStillForest) {
  // Without perturbation ties could create cycles; the perturbation must
  // break them.
  const Graph g = gen::torus2d(8, 8);  // all unit weights
  const Graph f = heaviest_incident_edge_forest(g, 11, /*perturb=*/true);
  EXPECT_TRUE(is_forest(f));
}

TEST(HeaviestEdgeForest, DeterministicForFixedSeed) {
  const Graph g = gen::grid2d(8, 8, gen::WeightSpec::uniform(1.0, 2.0), 5);
  const Graph f1 = heaviest_incident_edge_forest(g, 9);
  const Graph f2 = heaviest_incident_edge_forest(g, 9);
  EXPECT_EQ(f1.edge_list(), f2.edge_list());
}

TEST(IsUnimodal, DetectsLocalMinimum) {
  // Path with weights 3, 1, 3: the middle edge is a local minimum.
  std::vector<WeightedEdge> bad{{0, 1, 3.0}, {1, 2, 1.0}, {2, 3, 3.0}};
  EXPECT_FALSE(is_unimodal_forest(Graph(4, bad)));
  std::vector<WeightedEdge> good{{0, 1, 1.0}, {1, 2, 2.0}, {2, 3, 3.0}};
  EXPECT_TRUE(is_unimodal_forest(Graph(4, good)));
}

class FixedDegreeSweep : public testing::TestWithParam<vidx> {};

TEST_P(FixedDegreeSweep, ReductionFactorAtLeastTwo) {
  const vidx k = GetParam();
  const Graph g = gen::grid2d(12, 12, gen::WeightSpec::uniform(1.0, 2.0), 7);
  const auto result = fixed_degree_decomposition(g, {.max_cluster_size = k});
  validate_decomposition(g, result.decomposition);
  EXPECT_GE(result.decomposition.reduction_factor(), 2.0) << "k=" << k;
}

TEST_P(FixedDegreeSweep, ConductanceAboveTheoremFloor) {
  // Section 3.1 claims phi >= 1/(2 d^2 k) for maximum degree d.
  const vidx k = GetParam();
  const Graph g = gen::grid2d(10, 10, gen::WeightSpec::uniform(1.0, 2.0), 9);
  const auto result = fixed_degree_decomposition(g, {.max_cluster_size = k});
  const auto stats = evaluate_decomposition(g, result.decomposition);
  const double d = static_cast<double>(g.max_degree());
  EXPECT_GE(stats.min_phi_lower, 1.0 / (2.0 * d * d * k) - 1e-9) << "k=" << k;
  EXPECT_EQ(stats.num_disconnected_clusters, 0);
}

INSTANTIATE_TEST_SUITE_P(ClusterCaps, FixedDegreeSweep,
                         testing::Values(2, 3, 4, 8));

TEST(FixedDegree, ForestCarriesOriginalWeights) {
  const Graph g = gen::grid2d(6, 6, gen::WeightSpec::uniform(1.0, 4.0), 2);
  const auto result = fixed_degree_decomposition(g);
  for (const auto& e : result.forest.edge_list()) {
    EXPECT_DOUBLE_EQ(e.weight, g.edge_weight(e.u, e.v));
  }
  // Same edges in both forests.
  EXPECT_EQ(result.forest.num_edges(), result.perturbed_forest.num_edges());
}

TEST(FixedDegree, ClustersAreConnectedInForest) {
  const Graph g = gen::oct_volume(6, 6, 6, {}, 4);
  const auto result = fixed_degree_decomposition(g, {.max_cluster_size = 4});
  const auto members = cluster_members(result.decomposition.assignment,
                                       result.decomposition.num_clusters);
  for (const auto& cluster : members) {
    EXPECT_TRUE(is_connected(induced_subgraph(result.forest, cluster)));
  }
}

TEST(FixedDegree, WorksOnFixedDegreeFamilies) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Graph g =
        gen::random_regular(100, 4, gen::WeightSpec::uniform(1.0, 2.0), seed);
    const auto result = fixed_degree_decomposition(g);
    validate_decomposition(g, result.decomposition);
    EXPECT_GE(result.decomposition.reduction_factor(), 2.0) << "seed " << seed;
  }
}

TEST(FixedDegree, PerturbationAblationStillValidOnDistinctWeights) {
  // With strictly distinct weights the perturbation is not needed for the
  // forest property (the ablation the paper's argument suggests).
  const Graph g = gen::grid2d(8, 8, gen::WeightSpec::uniform(1.0, 2.0), 13);
  const auto result = fixed_degree_decomposition(
      g, {.max_cluster_size = 4, .perturb = false});
  validate_decomposition(g, result.decomposition);
  EXPECT_TRUE(is_forest(result.forest));
}

TEST(FixedDegree, RejectsBadCap) {
  const Graph g = gen::path(4);
  EXPECT_THROW((void)fixed_degree_decomposition(g, {.max_cluster_size = 1}),
               invalid_argument_error);
}

TEST(FixedDegree, IsolatedVerticesBecomeSingletons) {
  std::vector<WeightedEdge> edges{{0, 1, 1.0}, {1, 2, 2.0}};
  const Graph g(5, edges);  // 3, 4 isolated
  const auto result = fixed_degree_decomposition(g);
  validate_decomposition(g, result.decomposition);
  EXPECT_EQ(result.decomposition.num_clusters, 3);  // {0,1,2}, {3}, {4}
}

}  // namespace
}  // namespace hicond
