#include "hicond/util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "hicond/util/common.hpp"

namespace hicond {

void OnlineStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double OnlineStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::span<const double> values, double p) {
  HICOND_CHECK(!values.empty(), "percentile of empty sample");
  HICOND_CHECK(p >= 0.0 && p <= 100.0, "percentile out of range");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double geometric_mean(std::span<const double> values) {
  HICOND_CHECK(!values.empty(), "geometric mean of empty sample");
  double log_sum = 0.0;
  for (double v : values) {
    HICOND_CHECK(v > 0.0, "geometric mean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace hicond
