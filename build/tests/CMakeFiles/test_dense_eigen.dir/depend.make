# Empty dependencies file for test_dense_eigen.
# This may be replaced when dependencies are built.
