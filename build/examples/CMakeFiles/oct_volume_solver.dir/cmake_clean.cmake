file(REMOVE_RECURSE
  "CMakeFiles/oct_volume_solver.dir/oct_volume_solver.cpp.o"
  "CMakeFiles/oct_volume_solver.dir/oct_volume_solver.cpp.o.d"
  "oct_volume_solver"
  "oct_volume_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oct_volume_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
