// Move-only RAII ownership of a POSIX file descriptor.
//
// Every fd produced by socket/accept/open/pipe in this codebase must land
// in a unique_fd immediately (the fd-ownership hicond-tidy check enforces
// this), so an exception thrown between acquisition and the matching
// close() can never leak the descriptor. The single ::close call site
// lives here; everywhere else a raw close() is a lint error.
#pragma once

#include <unistd.h>

#include <utility>

namespace hicond {

/// Owns one file descriptor; closes it exactly once on destruction.
///
/// Modeled on std::unique_ptr: move-only, `get()` to borrow the raw fd
/// for syscalls, `release()` to hand ownership to an API that takes it
/// (e.g. fdopen), `reset()` to close early. A default-constructed or
/// moved-from unique_fd holds -1 and closes nothing.
class unique_fd {
 public:
  unique_fd() noexcept = default;
  explicit unique_fd(int fd) noexcept : fd_(fd) {}

  unique_fd(const unique_fd&) = delete;
  unique_fd& operator=(const unique_fd&) = delete;

  unique_fd(unique_fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  unique_fd& operator=(unique_fd&& other) noexcept {
    if (this != &other) {
      reset(other.fd_);
      other.fd_ = -1;
    }
    return *this;
  }

  ~unique_fd() { reset(); }

  /// The owned descriptor, or -1. Ownership is retained.
  [[nodiscard]] int get() const noexcept { return fd_; }

  /// Relinquish ownership without closing; returns the descriptor.
  [[nodiscard]] int release() noexcept { return std::exchange(fd_, -1); }

  /// Close the current descriptor (if any) and adopt `fd`.
  ///
  /// close() is deliberately not retried on EINTR: on Linux the
  /// descriptor is released even when close() is interrupted, so a retry
  /// could close an unrelated fd raced in by another thread.
  void reset(int fd = -1) noexcept {
    if (fd_ >= 0) {
      ::close(fd_);  // hicond-tidy: allow(fd-ownership)
    }
    fd_ = fd;
  }

  explicit operator bool() const noexcept { return fd_ >= 0; }

  friend void swap(unique_fd& a, unique_fd& b) noexcept {
    std::swap(a.fd_, b.fd_);
  }

 private:
  int fd_ = -1;
};

}  // namespace hicond
