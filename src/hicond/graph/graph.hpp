// Weighted undirected graph in compressed sparse row (CSR) form.
//
// This is the central substrate of the library: the paper's decompositions,
// Steiner preconditioners and spectral results are all stated over weighted
// graphs G = (V, E, w) and their Laplacians A_G. Both directions of every
// undirected edge are stored, so iteration over the incident edges of a
// vertex is a contiguous scan.
#pragma once

#include <span>
#include <vector>

#include "hicond/util/common.hpp"

namespace hicond {

/// One endpoint-annotated half-edge as seen from a vertex's adjacency list.
struct HalfEdge {
  vidx to;
  double weight;
};

/// An undirected weighted edge (u < v is NOT required).
struct WeightedEdge {
  vidx u;
  vidx v;
  double weight;

  friend bool operator==(const WeightedEdge&, const WeightedEdge&) = default;
};

/// Immutable weighted undirected graph. Self-loops are disallowed; parallel
/// edges are merged (weights summed) at construction time.
class Graph {
 public:
  /// Empty graph with `n` isolated vertices.
  explicit Graph(vidx n = 0);

  /// Build from an edge list. Parallel edges are merged, weights must be
  /// positive, endpoints must be in [0, n) and distinct.
  Graph(vidx n, std::span<const WeightedEdge> edges);

  /// Adopt an externally assembled symmetric CSR structure (both directions
  /// of every edge present, rows sorted). The input is always validated --
  /// this is the untrusted zero-copy entry point for interop -- and rejected
  /// with invalid_argument_error naming the violated invariant.
  [[nodiscard]] static Graph from_csr(vidx n, std::vector<eidx> offsets,
                                      std::vector<vidx> targets,
                                      std::vector<double> weights);

  /// Full structural validation (O(n + m log deg)): consistent sorted
  /// offsets, in-range targets, no self-loops, strictly positive finite
  /// weights, symmetric arcs with matching weights, consistent cached
  /// volumes. Throws invalid_argument_error naming the violated invariant.
  void validate() const;

  [[nodiscard]] vidx num_vertices() const noexcept { return n_; }

  /// Number of undirected edges.
  [[nodiscard]] eidx num_edges() const noexcept {
    return static_cast<eidx>(targets_.size()) / 2;
  }

  /// Number of stored directed arcs (2 * num_edges()).
  [[nodiscard]] eidx num_arcs() const noexcept {
    return static_cast<eidx>(targets_.size());
  }

  [[nodiscard]] vidx degree(vidx v) const {
    return static_cast<vidx>(offsets_[static_cast<std::size_t>(v) + 1] -
                             offsets_[static_cast<std::size_t>(v)]);
  }

  /// Maximum vertex degree (0 for an empty graph).
  [[nodiscard]] vidx max_degree() const noexcept;

  /// Total weight incident to v: vol(v) = sum of w(u, v) over neighbours u.
  [[nodiscard]] double vol(vidx v) const {
    return vol_[static_cast<std::size_t>(v)];
  }

  /// Sum of vol(v) over all vertices (= 2 * total edge weight).
  [[nodiscard]] double total_volume() const noexcept { return total_volume_; }

  /// Neighbour targets of v, aligned with weights(v).
  [[nodiscard]] std::span<const vidx> neighbors(vidx v) const {
    return {targets_.data() + offsets_[static_cast<std::size_t>(v)],
            static_cast<std::size_t>(degree(v))};
  }

  /// Edge weights incident to v, aligned with neighbors(v).
  [[nodiscard]] std::span<const double> weights(vidx v) const {
    return {weights_.data() + offsets_[static_cast<std::size_t>(v)],
            static_cast<std::size_t>(degree(v))};
  }

  /// CSR offset of v's adjacency block; arc indices are in
  /// [arc_begin(v), arc_begin(v+1)).
  [[nodiscard]] eidx arc_begin(vidx v) const {
    return offsets_[static_cast<std::size_t>(v)];
  }

  [[nodiscard]] vidx arc_target(eidx arc) const {
    return targets_[static_cast<std::size_t>(arc)];
  }

  [[nodiscard]] double arc_weight(eidx arc) const {
    return weights_[static_cast<std::size_t>(arc)];
  }

  /// Weight of edge (u, v); 0 when absent. O(deg(u)).
  [[nodiscard]] double edge_weight(vidx u, vidx v) const;

  /// True when edge (u, v) is present. O(min deg).
  [[nodiscard]] bool has_edge(vidx u, vidx v) const;

  /// All undirected edges with u < v, in CSR order.
  [[nodiscard]] std::vector<WeightedEdge> edge_list() const;

  /// True when the CSR arrays of the two graphs are bitwise identical
  /// (same vertex count, offsets, targets, weights). Because construction
  /// canonicalizes rows, this is content equality for graphs built through
  /// any public constructor -- it is the in-memory analogue of comparing
  /// snapshot fingerprints, and what the dynamic-repair path uses to decide
  /// whether a quotient actually changed. O(n + m).
  [[nodiscard]] bool identical_to(const Graph& other) const noexcept;

  /// y = A_G x where A_G is the graph Laplacian; parallel over vertices.
  void laplacian_apply(std::span<const double> x, std::span<double> y) const;

  /// Y = A_G X for k vectors stored column-major (column j occupies
  /// [j*n, (j+1)*n)). One CSR pass serves all k columns, so the row
  /// metadata (offsets, targets, weights) is read once instead of k times;
  /// each column's accumulation order matches laplacian_apply exactly, so
  /// column j of Y is bitwise identical to a single-vector apply of column
  /// j of X (the batched-serving determinism guarantee).
  void laplacian_apply_block(std::span<const double> x, std::span<double> y,
                             int k) const;

  /// Quadratic form x' A_G x = sum over edges of w(u,v) (x_u - x_v)^2.
  [[nodiscard]] double laplacian_quadratic(std::span<const double> x) const;

 private:
  friend class GraphBuilder;
  void finalize_volumes();
  void validate_structure() const;

  vidx n_ = 0;
  std::vector<eidx> offsets_;    // size n_ + 1
  std::vector<vidx> targets_;    // size 2m
  std::vector<double> weights_;  // size 2m
  std::vector<double> vol_;      // size n_
  double total_volume_ = 0.0;
};

/// cap(U, W) = total weight of edges with one endpoint flagged in `in_u` and
/// the other flagged in `in_w`. The flag vectors must have size n and be
/// disjoint.
[[nodiscard]] double cap(const Graph& g, std::span<const char> in_u,
                         std::span<const char> in_w);

/// out(S) = total weight leaving the vertex set flagged by `in_s`.
[[nodiscard]] double out_weight(const Graph& g, std::span<const char> in_s);

/// vol(S) = sum of vol(v) over flagged vertices.
[[nodiscard]] double vol_set(const Graph& g, std::span<const char> in_s);

/// Induced subgraph on `vertices`; returns the graph and writes the mapping
/// old-id -> new-id into `old_to_new` (-1 for vertices outside the set).
[[nodiscard]] Graph induced_subgraph(const Graph& g,
                                     std::span<const vidx> vertices,
                                     std::vector<vidx>* old_to_new = nullptr);

}  // namespace hicond
