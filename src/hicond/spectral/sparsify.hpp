// Spectral sparsification by effective-resistance sampling
// (Spielman-Srivastava), powered by this library's own solver stack.
//
// The paper situates its decompositions next to the Spielman-Teng
// sparsification line (Section 1: the local partitioning of [28] is the
// building block of their nearly-linear-time sparsifier). This module
// closes that loop: leverage scores w_e * R_eff(e) are approximated with
// O(log n) Laplacian solves (the Johnson-Lindenstrauss projection of
// B W^{1/2}, each column solved by the multilevel Steiner solver), and
// sampling edges proportionally yields a graph with (1 +- eps)-comparable
// quadratic form and far fewer edges on dense inputs.
#pragma once

#include <cstdint>

#include "hicond/graph/graph.hpp"
#include "hicond/solver.hpp"

namespace hicond {

struct ResistanceOptions {
  int projections = 24;     ///< JL dimension k (error ~ 1/sqrt(k))
  std::uint64_t seed = 33;
  LaplacianSolverOptions solver{};
};

/// Approximate effective resistance of every edge of g (aligned with
/// g.edge_list() order) via k random-projection solves. Requires a
/// connected graph.
[[nodiscard]] std::vector<double> approx_effective_resistances(
    const Graph& g, const ResistanceOptions& options = {});

struct SparsifyOptions {
  double epsilon = 0.5;     ///< target quality (drives the sample count)
  double oversample = 1.0;  ///< multiplier on the C n log n / eps^2 count
  ResistanceOptions resistance{};
  std::uint64_t seed = 77;
};

struct SparsifyResult {
  Graph sparsifier;
  eidx samples = 0;         ///< draws taken (with replacement)
};

/// Sample q = ceil(oversample * 8 n ln n / eps^2) edges with replacement,
/// each with probability proportional to its leverage score w_e R_eff(e),
/// reweighted by w_e / (q p_e). The result's Laplacian approximates g's.
[[nodiscard]] SparsifyResult spectral_sparsify(
    const Graph& g, const SparsifyOptions& options = {});

}  // namespace hicond
