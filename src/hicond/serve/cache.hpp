// LRU cache of built solver hierarchies, keyed by graph content + options.
//
// Theorem 3.5's point is that the [phi, rho] hierarchy and its Steiner
// preconditioner are reusable across every right-hand side on the same
// operator; a serving process should therefore pay build_hierarchy once per
// (graph, options) pair and amortize it over the request stream. The cache
// key is the snapshot fingerprint (bitwise content hash of the CSR arrays,
// serve/snapshot.hpp) plus a canonical rendering of the solver options, so
// a hit is only possible when the cold build would have been bit-for-bit
// the same construction -- which, under the library's determinism policy
// (docs/PARALLELISM.md), makes a cache-hit solve bitwise identical to a
// cold-build solve. tests/test_serve.cpp pins exactly that.
//
// Eviction is least-recently-used under a byte budget; entry sizes are the
// dominant CSR/hierarchy footprints (graphs, assignments, inverse
// diagonals) estimated from the built hierarchy. Hit/miss/eviction counts
// and the resident byte gauge go to obs/metrics under "serve.cache.*".
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hicond/dynamic/repair.hpp"
#include "hicond/solver.hpp"
#include "hicond/util/thread_annotations.hpp"

namespace hicond::serve {

/// Canonical, order-stable rendering of every option that affects the built
/// hierarchy or the solve; part of the cache key.
[[nodiscard]] std::string solver_options_key(
    const LaplacianSolverOptions& options);

/// Dominant-footprint estimate of a built solver's resident bytes (CSR
/// arrays and per-level vectors across the hierarchy).
[[nodiscard]] std::size_t approx_solver_bytes(const LaplacianSolver& solver);

class HierarchyCache {
 public:
  /// `budget_bytes` bounds the summed entry estimates; at least the most
  /// recently used entry is always retained, so a single oversized
  /// hierarchy still serves (and is evicted by the next insertion).
  explicit HierarchyCache(std::size_t budget_bytes);

  struct Lookup {
    std::shared_ptr<const LaplacianSolver> solver;
    bool hit = false;              ///< served from cache without building
    double build_seconds = 0.0;    ///< 0 on a hit
  };

  /// Fetch the solver for (fingerprint, options), building and inserting it
  /// from `graph` on a miss. The graph must be the one the fingerprint was
  /// computed from; a debug build cross-checks that.
  [[nodiscard]] Lookup get_or_build(std::uint64_t fingerprint,
                                    const Graph& graph,
                                    const LaplacianSolverOptions& options);

  /// Probe without building; nullptr on miss (does not touch LRU order).
  [[nodiscard]] std::shared_ptr<const LaplacianSolver> peek(
      std::uint64_t fingerprint, const LaplacianSolverOptions& options) const;

  struct UpdateOutcome {
    std::shared_ptr<const LaplacianSolver> solver;
    bool repaired = false;        ///< built by local repair (not cold)
    bool already_cached = false;  ///< new fingerprint was already resident
    bool upper_rebuilt = false;   ///< repair had to rebuild above level 0
    vidx clusters_touched = 0;    ///< dissolved (dirty + halo) clusters
    vidx clusters_dirty = 0;
    /// Why the build fell back to cold ("backend_unsupported",
    /// "flat_hierarchy", "dirty_volume_exceeded",
    /// "old_fingerprint_not_cached", "repair_disabled"); empty when repaired
    /// or already cached.
    std::string decline_reason;
    double build_seconds = 0.0;  ///< 0 when already cached
  };

  /// Update-in-place: install a solver for `new_fingerprint` (the graph
  /// after `updates` were applied to the old graph) under the same options,
  /// repairing the old entry's hierarchy locally when possible. Falls back
  /// to a cold build when the old fingerprint is not resident, repair
  /// declines (see dynamic/repair.hpp), or `allow_repair` is false -- the
  /// result is a resident entry for the new key either way. Idempotent: if
  /// the new key is already cached the existing solver is returned with
  /// `already_cached` set and no work done (this is what makes a retried
  /// router `update` land exactly once).
  [[nodiscard]] UpdateOutcome update_entry(
      std::uint64_t old_fingerprint, std::uint64_t new_fingerprint,
      const Graph& new_graph, std::span<const dynamic::EdgeUpdate> updates,
      const LaplacianSolverOptions& options,
      const dynamic::RepairOptions& repair_options = {},
      bool allow_repair = true);

  /// Per-entry usage record: how often each resident hierarchy was served
  /// from cache and when it was last touched (a logical access tick, not
  /// wall time, so records are deterministic). This is what a router's
  /// hot-set tracker consumes to decide which fingerprints to replicate.
  struct EntryStats {
    std::uint64_t fingerprint = 0;  ///< graph content hash of the entry
    std::string options_key;        ///< canonical solver-options rendering
    std::int64_t hits = 0;          ///< cache hits served by this entry
    std::int64_t last_use = 0;      ///< access tick of the latest hit/build
    std::size_t bytes = 0;          ///< footprint estimate
  };

  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t bytes = 0;
    std::size_t budget_bytes = 0;
    std::int64_t ticks = 0;  ///< total accesses (the logical clock)
    /// Resident entries, most recently used first.
    std::vector<EntryStats> per_entry;
  };
  [[nodiscard]] Stats stats() const;

  void clear();

 private:
  struct Entry {
    std::string key;
    std::uint64_t fingerprint = 0;
    std::string options_key;
    std::shared_ptr<const LaplacianSolver> solver;
    std::size_t bytes = 0;
    std::int64_t hits = 0;
    std::int64_t last_use = 0;
  };

  void evict_to_budget_locked() HICOND_REQUIRES(mu_);
  [[nodiscard]] Stats stats_locked() const HICOND_REQUIRES(mu_);

  mutable Mutex mu_;
  const std::size_t budget_bytes_;  ///< immutable after construction
  std::int64_t ticks_ HICOND_GUARDED_BY(mu_) = 0;
  std::size_t bytes_ HICOND_GUARDED_BY(mu_) = 0;
  std::int64_t hits_ HICOND_GUARDED_BY(mu_) = 0;
  std::int64_t misses_ HICOND_GUARDED_BY(mu_) = 0;
  std::int64_t evictions_ HICOND_GUARDED_BY(mu_) = 0;
  /// front = most recently used
  std::list<Entry> lru_ HICOND_GUARDED_BY(mu_);
  std::map<std::string, std::list<Entry>::iterator, std::less<>> index_
      HICOND_GUARDED_BY(mu_);
};

}  // namespace hicond::serve
