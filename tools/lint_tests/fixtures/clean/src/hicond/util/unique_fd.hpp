#pragma once

// Stand-in for the real util/unique_fd.hpp: the single ::close() site.
// fd-close must stay quiet here by path exemption.

class unique_fd {
 public:
  unique_fd() = default;
  explicit unique_fd(int fd) : fd_(fd) {}
  ~unique_fd() { reset(); }

  void reset(int fd = -1) {
    if (fd_ >= 0) {
      ::close(fd_);
    }
    fd_ = fd;
  }

 private:
  int fd_ = -1;
};
