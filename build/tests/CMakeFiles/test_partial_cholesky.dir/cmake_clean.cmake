file(REMOVE_RECURSE
  "CMakeFiles/test_partial_cholesky.dir/test_partial_cholesky.cpp.o"
  "CMakeFiles/test_partial_cholesky.dir/test_partial_cholesky.cpp.o.d"
  "test_partial_cholesky"
  "test_partial_cholesky.pdb"
  "test_partial_cholesky[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partial_cholesky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
