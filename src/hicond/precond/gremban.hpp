// Explicit Gremban reduction for Steiner preconditioners.
//
// Gremban & Miller showed a Steiner graph S (extra vertices allowed) can
// precondition A by solving the extended system S [x; y] = [r; 0] and
// keeping x: the effective preconditioner is the Schur complement B_S of S
// onto the original vertices, and sigma(A, S) = sigma(A, B_S)
// (Proposition 6.1 in Boman-Hendrickson, quoted as Lemma 3.2's setting).
//
// The SteinerPreconditioner class exploits the closed-form leaf elimination
// of Definition 3.1 graphs; this module is the general route -- a sparse
// factorization of the full (n+m)-vertex Steiner Laplacian -- usable with
// ANY Steiner graph, and doubling as an independent cross-check of the
// closed form.
#pragma once

#include <memory>

#include "hicond/graph/graph.hpp"
#include "hicond/la/cg.hpp"
#include "hicond/la/sparse_cholesky.hpp"

namespace hicond {

/// Preconditioner application through the explicit Steiner system: factor
/// the (n+m)-vertex Laplacian of the Steiner graph once, then each apply
/// pads the residual with zeros, solves, and truncates.
class GrembanSolver {
 public:
  /// `steiner` must be connected with its first `num_original` vertices
  /// corresponding to the vertices of the preconditioned graph.
  GrembanSolver(const Graph& steiner, vidx num_original);

  /// z = (B_S)^+ r via the extended solve (z is mean-free over the original
  /// vertices).
  void apply(std::span<const double> r, std::span<double> z) const;

  [[nodiscard]] LinearOperator as_operator() const;

  [[nodiscard]] vidx num_original() const noexcept { return n_; }
  [[nodiscard]] vidx num_steiner() const noexcept { return m_; }

 private:
  vidx n_ = 0;
  vidx m_ = 0;
  std::shared_ptr<LaplacianDirectSolver> solver_;
};

}  // namespace hicond
