# Empty dependencies file for test_spectral_partition.
# This may be replaced when dependencies are built.
