// Property-based testing over random graphs: generators, deterministic
// seeds, and greedy input shrinking on failure.
//
// A property is any callable that throws on violation (gtest assertions do
// not propagate across the framework boundary, so properties signal failure
// by exception -- std::runtime_error with a descriptive message is the
// convention; any std::exception counts as a failure). check_property draws
// `cases` graphs from the generator under per-case seeds derived from
// PropOptions::seed, and on the first failure shrinks the counterexample
// greedily: drop a vertex (induced subgraph), drop an edge, or reset all
// weights to 1, accepting any mutation that still fails, until a fixed
// point. Shrinking uses no randomness and scans candidates in a fixed
// order, so the minimal counterexample is deterministic for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "hicond/graph/graph.hpp"
#include "hicond/util/rng.hpp"

namespace hicond::prop {

/// Draw a graph of roughly `n` vertices (generators may round, e.g. to grid
/// dimensions) using `rng` for every random choice.
using GraphGen = std::function<Graph(Rng& rng, vidx n)>;

/// Throws (any std::exception) to signal the property is violated.
using GraphProperty = std::function<void(const Graph&)>;

struct PropOptions {
  int cases = 50;            ///< graphs to draw
  vidx min_size = 2;         ///< smallest requested size
  vidx max_size = 40;        ///< largest requested size
  std::uint64_t seed = 7;    ///< master seed; case i uses seed + i
  bool shrink = true;        ///< minimize the first counterexample
  int max_shrink_steps = 10000;  ///< accepted-mutation budget
};

struct PropResult {
  bool ok = true;
  int cases_run = 0;            ///< cases completed before success/failure
  std::uint64_t failing_seed = 0;  ///< per-case seed of the counterexample
  vidx original_size = 0;       ///< vertices in the unshrunk counterexample
  int shrink_steps = 0;         ///< accepted mutations during shrinking
  Graph minimal;                ///< shrunk counterexample (empty when ok)
  std::string message;          ///< exception text on the minimal instance

  /// One-paragraph failure report for gtest's `<<` diagnostics.
  [[nodiscard]] std::string describe() const;
};

/// Run `property` on `options.cases` graphs drawn from `gen`. Returns at the
/// first failure (after shrinking); result.ok == true means every case held.
[[nodiscard]] PropResult check_property(const GraphGen& gen,
                                        const GraphProperty& property,
                                        const PropOptions& options = {});

/// True when the two graphs are structurally identical (same vertex count
/// and identical sorted edge lists, weights compared exactly) -- used to
/// assert shrinking determinism.
[[nodiscard]] bool same_graph(const Graph& a, const Graph& b);

}  // namespace hicond::prop
