#include "hicond/spectral/normalized.hpp"

#include <cmath>

#include "hicond/util/common.hpp"
#include "hicond/util/parallel.hpp"

namespace hicond {

EigenDecomposition normalized_spectrum(const Graph& g) {
  HICOND_RUN_VALIDATION(expensive, g.validate());
  return symmetric_eigen(dense_normalized_laplacian(g));
}

LinearOperator normalized_laplacian_operator(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<double> inv_sqrt(n, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    const double vol = g.vol(static_cast<vidx>(v));
    if (vol > 0.0) inv_sqrt[v] = 1.0 / std::sqrt(vol);
  }
  // Capture the graph by reference: callers keep it alive (documented for
  // all operator adapters in this library).
  return [&g, inv_sqrt, n](std::span<const double> x, std::span<double> y) {
    HICOND_CHECK(x.size() == n && y.size() == n, "size mismatch");
    parallel_for(n, [&](std::size_t v) {
      const auto nbrs = g.neighbors(static_cast<vidx>(v));
      const auto ws = g.weights(static_cast<vidx>(v));
      double acc = (inv_sqrt[v] > 0.0 ? x[v] : 0.0);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const auto u = static_cast<std::size_t>(nbrs[i]);
        acc -= ws[i] * inv_sqrt[v] * inv_sqrt[u] * x[u];
      }
      y[v] = acc;
    });
  };
}

std::vector<double> sqrt_volume_unit_vector(const Graph& g) {
  HICOND_RUN_VALIDATION(expensive, g.validate());
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<double> d(n);
  double norm_sq = 0.0;
  for (std::size_t v = 0; v < n; ++v) {
    d[v] = std::sqrt(std::max(g.vol(static_cast<vidx>(v)), 0.0));
    norm_sq += g.vol(static_cast<vidx>(v));
  }
  const double inv = norm_sq > 0.0 ? 1.0 / std::sqrt(norm_sq) : 0.0;
  for (double& x : d) x *= inv;
  return d;
}

}  // namespace hicond
