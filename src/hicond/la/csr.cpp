#include "hicond/la/csr.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "hicond/util/common.hpp"
#include "hicond/util/float_eq.hpp"
#include "hicond/util/parallel.hpp"

namespace hicond {

void CsrMatrix::multiply(std::span<const double> x, std::span<double> y) const {
  HICOND_CHECK(x.size() == static_cast<std::size_t>(cols), "x size mismatch");
  HICOND_CHECK(y.size() == static_cast<std::size_t>(rows), "y size mismatch");
  parallel_for(static_cast<std::size_t>(rows), [&](std::size_t i) {
    double acc = 0.0;
    for (eidx k = offsets[i]; k < offsets[i + 1]; ++k) {
      acc += values[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(col_idx[static_cast<std::size_t>(k)])];
    }
    y[i] = acc;
  });
}

void CsrMatrix::multiply_transpose(std::span<const double> x,
                                   std::span<double> y) const {
  HICOND_CHECK(x.size() == static_cast<std::size_t>(rows), "x size mismatch");
  HICOND_CHECK(y.size() == static_cast<std::size_t>(cols), "y size mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  for (vidx i = 0; i < rows; ++i) {
    const double xi = x[static_cast<std::size_t>(i)];
    if (exact_zero(xi)) continue;
    for (eidx k = offsets[static_cast<std::size_t>(i)];
         k < offsets[static_cast<std::size_t>(i) + 1]; ++k) {
      y[static_cast<std::size_t>(col_idx[static_cast<std::size_t>(k)])] +=
          values[static_cast<std::size_t>(k)] * xi;
    }
  }
}

double CsrMatrix::at(vidx i, vidx j) const {
  const auto lo = static_cast<std::size_t>(offsets[static_cast<std::size_t>(i)]);
  const auto hi =
      static_cast<std::size_t>(offsets[static_cast<std::size_t>(i) + 1]);
  const auto begin = col_idx.begin() + static_cast<std::ptrdiff_t>(lo);
  const auto end = col_idx.begin() + static_cast<std::ptrdiff_t>(hi);
  const auto it = std::lower_bound(begin, end, j);
  if (it == end || *it != j) return 0.0;
  return values[static_cast<std::size_t>(it - col_idx.begin())];
}

void CsrMatrix::validate() const {
  HICOND_CHECK(rows >= 0 && cols >= 0, "matrix dimensions must be nonnegative");
  HICOND_CHECK(offsets.size() == static_cast<std::size_t>(rows) + 1,
               "offsets size mismatch");
  HICOND_CHECK(offsets.front() == 0 &&
                   offsets.back() == static_cast<eidx>(col_idx.size()),
               "offsets endpoints wrong");
  // Monotonicity must hold before the rows are walked below, otherwise the
  // walk itself would index out of bounds on ragged input.
  for (std::size_t i = 0; i + 1 < offsets.size(); ++i) {
    HICOND_CHECK(offsets[i] <= offsets[i + 1],
                 "offsets must be nondecreasing (ragged offsets)");
  }
  HICOND_CHECK(col_idx.size() == values.size(), "values size mismatch");
  for (vidx i = 0; i < rows; ++i) {
    for (eidx k = offsets[static_cast<std::size_t>(i)];
         k < offsets[static_cast<std::size_t>(i) + 1]; ++k) {
      const vidx j = col_idx[static_cast<std::size_t>(k)];
      HICOND_CHECK(j >= 0 && j < cols, "column index out of range");
      if (k > offsets[static_cast<std::size_t>(i)]) {
        HICOND_CHECK(col_idx[static_cast<std::size_t>(k - 1)] < j,
                     "columns not strictly increasing");
      }
      HICOND_CHECK(std::isfinite(values[static_cast<std::size_t>(k)]),
                   "non-finite value");
    }
  }
}

CsrMatrix csr_from_triplets(
    vidx rows, vidx cols,
    std::span<const std::tuple<vidx, vidx, double>> triplets) {
  std::vector<std::tuple<vidx, vidx, double>> sorted(triplets.begin(),
                                                     triplets.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return std::get<0>(a) != std::get<0>(b) ? std::get<0>(a) < std::get<0>(b)
                                            : std::get<1>(a) < std::get<1>(b);
  });
  CsrMatrix m;
  m.rows = rows;
  m.cols = cols;
  m.offsets.assign(static_cast<std::size_t>(rows) + 1, 0);
  for (std::size_t i = 0; i < sorted.size();) {
    const vidx r = std::get<0>(sorted[i]);
    const vidx c = std::get<1>(sorted[i]);
    HICOND_CHECK(r >= 0 && r < rows && c >= 0 && c < cols,
                 "triplet out of range");
    double v = 0.0;
    std::size_t j = i;
    while (j < sorted.size() && std::get<0>(sorted[j]) == r &&
           std::get<1>(sorted[j]) == c) {
      v += std::get<2>(sorted[j]);
      ++j;
    }
    m.col_idx.push_back(c);
    m.values.push_back(v);
    ++m.offsets[static_cast<std::size_t>(r) + 1];
    i = j;
  }
  for (vidx r = 0; r < rows; ++r) {
    m.offsets[static_cast<std::size_t>(r) + 1] +=
        m.offsets[static_cast<std::size_t>(r)];
  }
  return m;
}

CsrMatrix csr_laplacian(const Graph& g) {
  HICOND_RUN_VALIDATION(expensive, g.validate());
  const vidx n = g.num_vertices();
  CsrMatrix m;
  m.rows = n;
  m.cols = n;
  m.offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  for (vidx v = 0; v < n; ++v) {
    m.offsets[static_cast<std::size_t>(v) + 1] =
        m.offsets[static_cast<std::size_t>(v)] + g.degree(v) + 1;
  }
  m.col_idx.resize(static_cast<std::size_t>(m.offsets.back()));
  m.values.resize(static_cast<std::size_t>(m.offsets.back()));
  parallel_for(static_cast<std::size_t>(n), [&](std::size_t v) {
    // Neighbours are sorted in the CSR graph; insert the diagonal in order.
    auto k = static_cast<std::size_t>(m.offsets[v]);
    const auto nbrs = g.neighbors(static_cast<vidx>(v));
    const auto ws = g.weights(static_cast<vidx>(v));
    bool diag_done = false;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (!diag_done && static_cast<std::size_t>(nbrs[i]) > v) {
        m.col_idx[k] = static_cast<vidx>(v);
        m.values[k] = g.vol(static_cast<vidx>(v));
        ++k;
        diag_done = true;
      }
      m.col_idx[k] = nbrs[i];
      m.values[k] = -ws[i];
      ++k;
    }
    if (!diag_done) {
      m.col_idx[k] = static_cast<vidx>(v);
      m.values[k] = g.vol(static_cast<vidx>(v));
    }
  });
  return m;
}

CsrMatrix csr_normalized_laplacian(const Graph& g) {
  CsrMatrix m = csr_laplacian(g);
  std::vector<double> inv_sqrt(static_cast<std::size_t>(g.num_vertices()), 0.0);
  for (vidx v = 0; v < g.num_vertices(); ++v) {
    if (g.vol(v) > 0.0) {
      inv_sqrt[static_cast<std::size_t>(v)] = 1.0 / std::sqrt(g.vol(v));
    }
  }
  parallel_for(static_cast<std::size_t>(m.rows), [&](std::size_t i) {
    for (eidx k = m.offsets[i]; k < m.offsets[i + 1]; ++k) {
      const auto j =
          static_cast<std::size_t>(m.col_idx[static_cast<std::size_t>(k)]);
      m.values[static_cast<std::size_t>(k)] *= inv_sqrt[i] * inv_sqrt[j];
    }
  });
  return m;
}

CsrMatrix membership_matrix(std::span<const vidx> assignment, vidx m) {
  CsrMatrix r;
  r.rows = static_cast<vidx>(assignment.size());
  r.cols = m;
  r.offsets.resize(assignment.size() + 1);
  r.col_idx.resize(assignment.size());
  r.values.assign(assignment.size(), 1.0);
  r.offsets[0] = 0;
  for (std::size_t v = 0; v < assignment.size(); ++v) {
    HICOND_CHECK(assignment[v] >= 0 && assignment[v] < m,
                 "assignment value out of range");
    r.col_idx[v] = assignment[v];
    r.offsets[v + 1] = static_cast<eidx>(v) + 1;
  }
  return r;
}

CsrMatrix csr_transpose(const CsrMatrix& a) {
  HICOND_RUN_VALIDATION(expensive, a.validate());
  CsrMatrix t;
  t.rows = a.cols;
  t.cols = a.rows;
  t.offsets.assign(static_cast<std::size_t>(a.cols) + 1, 0);
  for (vidx j : a.col_idx) ++t.offsets[static_cast<std::size_t>(j) + 1];
  for (vidx c = 0; c < a.cols; ++c) {
    t.offsets[static_cast<std::size_t>(c) + 1] +=
        t.offsets[static_cast<std::size_t>(c)];
  }
  t.col_idx.resize(a.col_idx.size());
  t.values.resize(a.values.size());
  std::vector<eidx> cursor(t.offsets.begin(), t.offsets.end() - 1);
  for (vidx i = 0; i < a.rows; ++i) {
    for (eidx k = a.offsets[static_cast<std::size_t>(i)];
         k < a.offsets[static_cast<std::size_t>(i) + 1]; ++k) {
      const auto j = static_cast<std::size_t>(
          a.col_idx[static_cast<std::size_t>(k)]);
      const auto pos = static_cast<std::size_t>(cursor[j]++);
      t.col_idx[pos] = i;
      t.values[pos] = a.values[static_cast<std::size_t>(k)];
    }
  }
  return t;
}

std::vector<double> csr_row_sums(const CsrMatrix& a) {
  HICOND_RUN_VALIDATION(expensive, a.validate());
  std::vector<double> sums(static_cast<std::size_t>(a.rows), 0.0);
  parallel_for(static_cast<std::size_t>(a.rows), [&](std::size_t i) {
    double acc = 0.0;
    for (eidx k = a.offsets[i]; k < a.offsets[i + 1]; ++k) {
      acc += a.values[static_cast<std::size_t>(k)];
    }
    sums[i] = acc;
  });
  return sums;
}

}  // namespace hicond
