#include "hicond/tree/rooted_tree.hpp"

#include <gtest/gtest.h>

#include "hicond/graph/generators.hpp"

namespace hicond {
namespace {

TEST(RootedForest, PathRootedAtEnd) {
  const Graph g = gen::path(5);
  const RootedForest f = RootedForest::build(g, 0);
  EXPECT_EQ(f.roots().size(), 1u);
  EXPECT_EQ(f.roots()[0], 0);
  EXPECT_TRUE(f.is_root(0));
  EXPECT_EQ(f.parent(1), 0);
  EXPECT_EQ(f.parent(4), 3);
  EXPECT_EQ(f.subtree_size(0), 5);
  EXPECT_EQ(f.subtree_size(2), 3);
  EXPECT_EQ(f.subtree_size(4), 1);
  EXPECT_TRUE(f.is_leaf(4));
  EXPECT_FALSE(f.is_leaf(2));
}

TEST(RootedForest, PreferredRootRespected) {
  const Graph g = gen::path(5);
  const RootedForest f = RootedForest::build(g, 2);
  EXPECT_EQ(f.roots()[0], 2);
  EXPECT_EQ(f.parent(1), 2);
  EXPECT_EQ(f.parent(3), 2);
  EXPECT_EQ(f.num_children(2), 2);
  EXPECT_EQ(f.subtree_size(2), 5);
}

TEST(RootedForest, ParentWeightsMatchEdges) {
  const Graph g = gen::random_tree(60, gen::WeightSpec::uniform(0.5, 7.0), 5);
  const RootedForest f = RootedForest::build(g);
  for (vidx v = 0; v < 60; ++v) {
    if (f.is_root(v)) {
      EXPECT_DOUBLE_EQ(f.parent_weight(v), 0.0);
    } else {
      EXPECT_DOUBLE_EQ(f.parent_weight(v), g.edge_weight(v, f.parent(v)));
    }
  }
}

TEST(RootedForest, SubtreeSizesSumCorrectly) {
  const Graph g = gen::random_tree(100, gen::WeightSpec::unit(), 9);
  const RootedForest f = RootedForest::build(g);
  for (vidx v = 0; v < 100; ++v) {
    vidx child_sum = 1;
    for (vidx c : f.children(v)) child_sum += f.subtree_size(c);
    EXPECT_EQ(f.subtree_size(v), child_sum);
  }
  EXPECT_EQ(f.subtree_size(f.roots()[0]), 100);
}

TEST(RootedForest, TopDownOrderVisitsParentsFirst) {
  const Graph g = gen::binary_tree(6);
  const RootedForest f = RootedForest::build(g);
  std::vector<vidx> position(static_cast<std::size_t>(g.num_vertices()), -1);
  const auto order = f.top_down_order();
  for (std::size_t i = 0; i < order.size(); ++i) {
    position[static_cast<std::size_t>(order[i])] = static_cast<vidx>(i);
  }
  for (vidx v = 0; v < g.num_vertices(); ++v) {
    if (!f.is_root(v)) {
      EXPECT_LT(position[static_cast<std::size_t>(f.parent(v))],
                position[static_cast<std::size_t>(v)]);
    }
  }
}

TEST(RootedForest, MultipleComponents) {
  std::vector<WeightedEdge> edges{{0, 1, 1.0}, {2, 3, 1.0}, {3, 4, 1.0}};
  const Graph g(6, edges);
  const RootedForest f = RootedForest::build(g);
  EXPECT_EQ(f.roots().size(), 3u);  // {0,1}, {2,3,4}, {5}
  EXPECT_EQ(f.subtree_size(f.roots()[1]), 3);
}

TEST(RootedForest, RejectsCyclicInput) {
  EXPECT_THROW((void)RootedForest::build(gen::cycle(4)),
               invalid_argument_error);
}

TEST(RootedForest, ChildrenListsAreComplete) {
  const Graph g = gen::star(10);
  const RootedForest f = RootedForest::build(g, 0);
  EXPECT_EQ(f.num_children(0), 9);
  for (vidx v = 1; v < 10; ++v) EXPECT_EQ(f.num_children(v), 0);
}

}  // namespace
}  // namespace hicond
