// The embarrassingly parallel fixed-degree decomposition of Section 3.1.
//
// Three passes over the graph:
//  [1] independently perturb every edge weight by a random factor in (1, 2);
//  [2] every vertex keeps its heaviest perturbed incident edge -- the union
//      of kept edges is a *unimodal* forest B (no path has a local-minimum
//      edge), which is what bounds the closure conductance of the clusters;
//  [3] split every tree of B into clusters of at most k vertices.
//
// The paper claims the result is a [1/(2 d^2 k), 2] decomposition for
// maximum degree d, and by Theorem 3.5 it yields a Steiner preconditioner
// with constant condition number -- the first linear-work parallel
// construction of such preconditioners for fixed-degree Laplacians.
//
// Every pass is data-parallel; the per-edge perturbation uses a
// counter-based hash so results are deterministic for any thread count.
#pragma once

#include <cstdint>

#include "hicond/graph/graph.hpp"
#include "hicond/partition/decomposition.hpp"

namespace hicond {

struct FixedDegreeOptions {
  vidx max_cluster_size = 4;  ///< k in step [3]
  std::uint64_t seed = 1;     ///< perturbation seed
  bool perturb = true;        ///< disable for the ablation study
};

struct FixedDegreeResult {
  Decomposition decomposition;
  Graph forest;            ///< B with the original weights
  Graph perturbed_forest;  ///< B with the perturbed weights (unimodal)
};

/// Run the three-pass construction on an arbitrary weighted graph.
[[nodiscard]] FixedDegreeResult fixed_degree_decomposition(
    const Graph& g, const FixedDegreeOptions& options = {});

/// Pass [1]+[2] only: the heaviest-incident-edge forest under the perturbed
/// weights, returned with perturbed weights. Exposed for tests of the
/// unimodality property.
[[nodiscard]] Graph heaviest_incident_edge_forest(
    const Graph& g, std::uint64_t seed, bool perturb = true);

/// True when no path in the forest contains an edge strictly lighter than
/// both its neighbours on the path (the unimodality property of Section
/// 3.1). O(sum_v deg^2) -- testing utility.
[[nodiscard]] bool is_unimodal_forest(const Graph& forest);

}  // namespace hicond
