// Wall-clock timing helpers for the benchmark harnesses.
#pragma once

#include <chrono>
#include <string>

namespace hicond {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() noexcept { reset(); }

  /// Restart the stopwatch.
  void reset() noexcept { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept;

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Time a callable, returning (result of repeated best-of-k timing) seconds.
/// Runs `fn` exactly `repeats` times and returns the minimum wall time.
template <typename Fn>
double time_best_of(int repeats, Fn&& fn) {
  double best = 1e300;
  for (int i = 0; i < repeats; ++i) {
    Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

/// Human-readable duration, e.g. "12.3 ms".
[[nodiscard]] std::string format_duration(double seconds);

}  // namespace hicond
