#!/usr/bin/env python3
"""Scripted end-to-end session against the sharded hicond serving stack.

Drives the real hicond_router + hicond_serve binaries through the real wire
protocol (router on stdio, workers over unix sockets) and asserts the
sharding subsystem's contract:

  1. reference: a lone hicond_serve answers every solve/batch_solve first;
     its solution_fnv values are the ground truth for bitwise equality.
  2. topology: the router reports 3 live workers with distinct pids, the
     ring parameters, and -- after loads -- each graph's primary/replica
     placement.
  3. routing: every solve and batch_solve routed through the router returns
     solution_fnv values byte-identical to the lone server's; warm repeats
     are cache hits with identical bits.
  4. backends: solves carrying a partitioner-backend selection route to
     their own cache entries and stay byte-identical to a lone server
     running the same session; an unknown backend is rejected; an update
     against a louvain-built entry declines local repair with
     "backend_unsupported" and lands via the cold-rebuild fallback.
  5. replication: hammering one fingerprint past the hot threshold mirrors
     it to its replica position (`replicated` flips in topology).
  6. supervision: SIGKILLing the worker that owns a slow cold build while
     the request is in flight must be invisible to the client -- the router
     respawns the worker, replays its loads, retries the request once, and
     the retried response is still bitwise identical; stats report the
     restart/retry and topology shows a new pid.
  7. aggregated stats: the fanned-out stats document carries the aggregate
     cache/requests section, router counters, and one per-worker breakdown
     (including the per-entry cache stats) per live worker.
  8. shutdown: drains, stops every worker process, exits 0.

Usage: shard_smoke.py HICOND_ROUTER_BIN HICOND_SERVE_BIN HICOND_TOOL_BIN
                      [WORK_DIR]
Exit 0 when every assertion holds.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

WORKERS = 3
RHS_SEED = 17
BATCH_K = 4
HOT_THRESHOLD = 4
HOT_INTERVAL = 6


def fail(message):
    print(f"shard_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check(condition, message):
    if not condition:
        fail(message)


class Session:
    """One NDJSON server process (router or lone worker) spoken to over
    stdin/stdout. post()/read_response() are split so the kill-mid-flight
    test can interleave a signal between request and response."""

    def __init__(self, argv):
        self.proc = subprocess.Popen(
            argv,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        self.next_id = 0

    def post(self, request):
        self.next_id += 1
        request = dict(request, id=self.next_id)
        self.proc.stdin.write(json.dumps(request) + "\n")
        self.proc.stdin.flush()
        return self.next_id

    def read_response(self, want_id):
        line = self.proc.stdout.readline()
        check(line, f"server closed the stream awaiting response {want_id}")
        response = json.loads(line)
        check(
            response.get("id") == want_id,
            f"response id mismatch: want {want_id}, got {response}",
        )
        return response

    def call(self, request):
        return self.read_response(self.post(request))

    def finish(self):
        out, err = self.proc.communicate(timeout=120)
        check(
            self.proc.returncode == 0,
            f"server exited {self.proc.returncode}; stderr:\n{err}",
        )
        check(not out.strip(), f"unexpected trailing output: {out!r}")


def run(tool, *args):
    result = subprocess.run(
        [tool, *args], capture_output=True, text=True, check=False
    )
    check(
        result.returncode == 0,
        f"{os.path.basename(tool)} {' '.join(args)} exited "
        f"{result.returncode}: {result.stderr}",
    )
    return result.stdout.strip()


def pid_alive(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    return True


def main():
    if len(sys.argv) < 4:
        print(__doc__, file=sys.stderr)
        return 2
    router_bin, serve_bin, tool_bin = sys.argv[1], sys.argv[2], sys.argv[3]
    work = sys.argv[4] if len(sys.argv) > 4 else tempfile.mkdtemp(
        prefix="hicond_shard_smoke_"
    )
    os.makedirs(work, exist_ok=True)

    # Several small graphs so the ring has something to spread, plus one
    # large graph whose cold hierarchy build is slow enough that a SIGKILL
    # sent right after the solve request reliably lands mid-flight.
    snaps, fingerprints = [], []
    for i, side in enumerate([24, 28, 32, 36]):
        wel = os.path.join(work, f"g{i}.wel")
        snap = os.path.join(work, f"g{i}.hsnap")
        run(tool_bin, "gen", "grid2d", str(side), wel, str(3 + i))
        run(tool_bin, "snapshot-convert", wel, snap)
        snaps.append(snap)
        fingerprints.append(run(tool_bin, "fingerprint", snap))
    big_wel = os.path.join(work, "big.wel")
    big_snap = os.path.join(work, "big.hsnap")
    run(tool_bin, "gen", "grid2d", "160", big_wel, "99")
    run(tool_bin, "snapshot-convert", big_wel, big_snap)
    big_fp = run(tool_bin, "fingerprint", big_snap)

    # ---- reference pass: lone worker ground truth --------------------------
    lone = Session([serve_bin])
    truth_solve, truth_batch = {}, {}
    for snap, fp in zip(snaps + [big_snap], fingerprints + [big_fp]):
        loaded = lone.call({"op": "load", "path": snap})
        check(loaded.get("ok") is True, f"reference load failed: {loaded}")
        check(loaded.get("graph") == fp, "reference fingerprint mismatch")
        solved = lone.call({"op": "solve", "graph": fp, "rhs_seed": RHS_SEED})
        check(solved.get("ok") is True, f"reference solve failed: {solved}")
        truth_solve[fp] = solved["solution_fnv"]
    batch = lone.call(
        {
            "op": "batch_solve",
            "graph": fingerprints[0],
            "rhs_random": {"count": BATCH_K, "seed": RHS_SEED},
        }
    )
    check(batch.get("ok") is True, f"reference batch failed: {batch}")
    truth_batch[fingerprints[0]] = batch["solution_fnv"]
    shut = lone.call({"op": "shutdown"})
    check(shut.get("ok") is True, "reference shutdown failed")
    lone.finish()

    # ---- the sharded deployment -------------------------------------------
    router = Session(
        [
            router_bin,
            "--workers", str(WORKERS),
            "--worker-bin", serve_bin,
            "--socket-dir", os.path.join(work, "sockets"),
            "--hot-threshold", str(HOT_THRESHOLD),
            "--hot-interval", str(HOT_INTERVAL),
            "--replicate-top-k", "1",
        ]
    )
    os.makedirs(os.path.join(work, "sockets"), exist_ok=True)

    topo = router.call({"op": "topology"})
    check(topo.get("ok") is True, f"topology failed: {topo}")
    check(topo["workers_total"] == WORKERS, f"expected {WORKERS} workers")
    check(
        topo["ring"]["vnodes_per_worker"] >= 1
        and topo["ring"]["hot_threshold"] == HOT_THRESHOLD,
        f"ring parameters not reported: {topo}",
    )
    states = [w["state"] for w in topo["workers"]]
    check(states == ["up"] * WORKERS, f"workers not all up: {states}")
    pids = [w["pid"] for w in topo["workers"]]
    check(len(set(pids)) == WORKERS, f"worker pids not distinct: {pids}")
    check(all(pid_alive(p) for p in pids), "a reported worker pid is dead")

    for snap, fp in zip(snaps + [big_snap], fingerprints + [big_fp]):
        loaded = router.call({"op": "load", "path": snap})
        check(loaded.get("ok") is True, f"routed load failed: {loaded}")
        check(
            loaded.get("graph") == fp,
            f"routed load fingerprint {loaded.get('graph')} != {fp}",
        )

    topo = router.call({"op": "topology"})
    placements = {g["fingerprint"]: g for g in topo["graphs"]}
    check(
        set(placements) == set(fingerprints + [big_fp]),
        f"topology graph set mismatch: {sorted(placements)}",
    )
    for fp, entry in placements.items():
        check(0 <= entry["primary"] < WORKERS, f"bad primary: {entry}")
        check(
            0 <= entry["replica"] < WORKERS
            and entry["replica"] != entry["primary"],
            f"bad replica: {entry}",
        )
        check(entry["replicated"] is False, "nothing should be hot yet")

    # ---- bitwise equality through the router ------------------------------
    for fp in fingerprints:
        cold = router.call({"op": "solve", "graph": fp, "rhs_seed": RHS_SEED})
        check(cold.get("ok") is True, f"routed solve failed: {cold}")
        check(cold.get("cache_hit") is False, "routed first solve must miss")
        check(
            cold["solution_fnv"] == truth_solve[fp],
            f"routed solve of {fp} is not bitwise equal to the lone "
            f"server: {cold['solution_fnv']} != {truth_solve[fp]}",
        )
        warm = router.call({"op": "solve", "graph": fp, "rhs_seed": RHS_SEED})
        check(warm.get("cache_hit") is True, "routed second solve must hit")
        check(
            warm["solution_fnv"] == truth_solve[fp],
            "routed warm solve changed the bits",
        )
    rbatch = router.call(
        {
            "op": "batch_solve",
            "graph": fingerprints[0],
            "rhs_random": {"count": BATCH_K, "seed": RHS_SEED},
        }
    )
    check(rbatch.get("ok") is True, f"routed batch failed: {rbatch}")
    check(
        rbatch["solution_fnv"] == truth_batch[fingerprints[0]],
        "routed batch_solve columns are not bitwise equal to the lone "
        "server's",
    )
    print("shard_smoke: routed solves bitwise-identical to lone server")

    # ---- backend-selected solves and the update decline path ---------------
    # The solve carries the contraction backend in its request line; the
    # router forwards it verbatim, so the routed response must be
    # byte-identical to a lone server running the identical session.
    backend_fp = fingerprints[0]
    upd_backend = [{"kind": "reweight", "u": 0, "v": 1, "weight": 2.0}]
    lone = Session([serve_bin])
    check(
        lone.call({"op": "load", "path": snaps[0]}).get("ok") is True,
        "backend-phase lone load failed",
    )
    truth_backend = {}
    for backend in ["louvain", "lowdiam"]:
        solved = lone.call(
            {
                "op": "solve",
                "graph": backend_fp,
                "rhs_seed": RHS_SEED,
                "backend": backend,
            }
        )
        check(
            solved.get("ok") is True and solved.get("backend") == backend,
            f"backend-phase lone solve failed: {solved}",
        )
        truth_backend[backend] = solved["solution_fnv"]
    # A louvain-built entry has no local repair: the update must decline
    # with an explicit reason and land via the cold-rebuild fallback.
    lone_decl = lone.call(
        {
            "op": "update",
            "graph": backend_fp,
            "updates": upd_backend,
            "backend": "louvain",
        }
    )
    check(
        lone_decl.get("ok") is True
        and lone_decl.get("repaired") is False
        and lone_decl.get("decline_reason") == "backend_unsupported",
        f"lone louvain update did not decline cleanly: {lone_decl}",
    )
    shut = lone.call({"op": "shutdown"})
    check(shut.get("ok") is True, "backend-phase lone shutdown failed")
    lone.finish()

    for backend in ["louvain", "lowdiam"]:
        req = {
            "op": "solve",
            "graph": backend_fp,
            "rhs_seed": RHS_SEED,
            "backend": backend,
        }
        cold = router.call(req)
        check(
            cold.get("ok") is True and cold.get("backend") == backend,
            f"routed backend solve failed: {cold}",
        )
        check(
            cold.get("cache_hit") is False,
            "a backend-selected solve must be its own cache entry",
        )
        check(
            cold["solution_fnv"] == truth_backend[backend],
            f"routed {backend} solve is not bitwise equal to the lone "
            f"server: {cold['solution_fnv']} != {truth_backend[backend]}",
        )
        warm = router.call(req)
        check(
            warm.get("cache_hit") is True
            and warm["solution_fnv"] == truth_backend[backend],
            f"routed warm {backend} solve drifted",
        )
    bad = router.call(
        {
            "op": "solve",
            "graph": backend_fp,
            "rhs_seed": RHS_SEED,
            "backend": "nope",
        }
    )
    check(
        bad.get("ok") is False and bad.get("error") == "unknown_backend",
        f"unknown backend not rejected: {bad}",
    )
    routed_decl = router.call(
        {
            "op": "update",
            "graph": backend_fp,
            "updates": upd_backend,
            "backend": "louvain",
        }
    )
    check(
        routed_decl.get("ok") is True
        and routed_decl.get("repaired") is False
        and routed_decl.get("decline_reason") == "backend_unsupported"
        and routed_decl.get("new_graph") == lone_decl.get("new_graph"),
        f"routed louvain update decline diverged: {routed_decl}",
    )
    print(
        "shard_smoke: backend-selected solves bitwise-identical; louvain "
        "update declined to cold rebuild"
    )

    # ---- hot-set replication ----------------------------------------------
    hot_fp = fingerprints[1]
    for _ in range(HOT_THRESHOLD + HOT_INTERVAL + 2):
        hammered = router.call(
            {"op": "solve", "graph": hot_fp, "rhs_seed": RHS_SEED}
        )
        check(hammered.get("ok") is True, "hammered solve failed")
        check(
            hammered["solution_fnv"] == truth_solve[hot_fp],
            "hammered solve changed the bits",
        )
    topo = router.call({"op": "topology"})
    hot_entry = next(
        g for g in topo["graphs"] if g["fingerprint"] == hot_fp
    )
    check(
        hot_entry["replicated"] is True,
        f"hot fingerprint was not replicated: {hot_entry}",
    )
    print(
        f"shard_smoke: hot fingerprint {hot_fp} replicated to worker "
        f"{hot_entry['replica']}"
    )

    # ---- dynamic updates through the router --------------------------------
    # Phase A: an auto-mode (repair) update routed through the router must
    # behave exactly like a lone server running the identical session: same
    # response fields, and post-update solves bitwise equal.
    upd_a = [
        {"kind": "reweight", "u": 0, "v": 1, "weight": 4.25},
        {"kind": "insert", "u": 0, "v": 33, "weight": 1.75},
    ]
    lone = Session([serve_bin])
    check(
        lone.call({"op": "load", "path": snaps[2]}).get("ok") is True,
        "phase-A lone load failed",
    )
    check(
        lone.call(
            {"op": "solve", "graph": fingerprints[2], "rhs_seed": RHS_SEED}
        ).get("ok") is True,
        "phase-A lone warm-up solve failed",
    )
    lone_up = lone.call(
        {"op": "update", "graph": fingerprints[2], "updates": upd_a}
    )
    check(lone_up.get("ok") is True, f"phase-A lone update failed: {lone_up}")
    check(lone_up.get("repaired") is True, f"lone update did not repair: "
          f"{lone_up}")
    lone_new = lone.call(
        {"op": "solve", "graph": lone_up["new_graph"], "rhs_seed": RHS_SEED}
    )
    check(lone_new.get("ok") is True, "phase-A lone post-update solve failed")
    shut = lone.call({"op": "shutdown"})
    check(shut.get("ok") is True, "phase-A lone shutdown failed")
    lone.finish()

    routed_up = router.call(
        {"op": "update", "graph": fingerprints[2], "updates": upd_a}
    )
    check(
        routed_up.get("ok") is True,
        f"routed update failed: {routed_up}",
    )
    for field in ["repaired", "unchanged", "new_graph", "upper_rebuilt",
                  "clusters_touched", "clusters_dirty"]:
        check(
            routed_up.get(field) == lone_up.get(field),
            f"routed update field {field} diverged: "
            f"{routed_up.get(field)} != {lone_up.get(field)}",
        )
    routed_new = router.call(
        {"op": "solve", "graph": routed_up["new_graph"], "rhs_seed": RHS_SEED}
    )
    check(
        routed_new.get("ok") is True
        and routed_new["solution_fnv"] == lone_new["solution_fnv"],
        "routed post-repair solve is not bitwise equal to the lone "
        "server's",
    )
    # The pre-update fingerprint stays served.
    old_again = router.call(
        {"op": "solve", "graph": fingerprints[2], "rhs_seed": RHS_SEED}
    )
    check(
        old_again.get("ok") is True
        and old_again["solution_fnv"] == truth_solve[fingerprints[2]],
        "pre-update fingerprint drifted after the update",
    )
    print("shard_smoke: repair-mode update matches lone server bitwise")

    # Phase B: a rebuild-mode update must be bitwise identical to a lone
    # server cold-loading the mutated snapshot produced by hicond_tool
    # mutate -- the strongest equivalence the determinism policy offers.
    upd_b = [
        {"kind": "reweight", "u": 0, "v": 1, "weight": 3.5},
        {"kind": "insert", "u": 0, "v": 37, "weight": 1.25},
    ]
    upd_b_path = os.path.join(work, "upd_b.json")
    with open(upd_b_path, "w", encoding="utf-8") as f:
        json.dump({"updates": upd_b}, f)
    mut_b_snap = os.path.join(work, "g3_mut.hsnap")
    mut_b_fp = run(tool_bin, "mutate", snaps[3], upd_b_path, mut_b_snap)
    lone = Session([serve_bin])
    check(
        lone.call({"op": "load", "path": mut_b_snap}).get("ok") is True,
        "phase-B lone load failed",
    )
    truth_b = lone.call(
        {"op": "solve", "graph": mut_b_fp, "rhs_seed": RHS_SEED}
    )
    check(truth_b.get("ok") is True, "phase-B lone solve failed")
    shut = lone.call({"op": "shutdown"})
    check(shut.get("ok") is True, "phase-B lone shutdown failed")
    lone.finish()

    rebuilt = router.call(
        {
            "op": "update",
            "graph": fingerprints[3],
            "mode": "rebuild",
            "updates": upd_b,
        }
    )
    check(rebuilt.get("ok") is True, f"rebuild update failed: {rebuilt}")
    check(
        rebuilt.get("repaired") is False,
        "rebuild mode must not take the repair path",
    )
    check(
        rebuilt.get("new_graph") == mut_b_fp,
        f"update fingerprint {rebuilt.get('new_graph')} != hicond_tool "
        f"mutate's {mut_b_fp}",
    )
    routed_b = router.call(
        {"op": "solve", "graph": mut_b_fp, "rhs_seed": RHS_SEED}
    )
    check(
        routed_b.get("ok") is True
        and routed_b["solution_fnv"] == truth_b["solution_fnv"],
        "rebuild-mode update is not bitwise equal to a cold load of the "
        "mutated snapshot",
    )
    print("shard_smoke: rebuild-mode update matches cold mutated load "
          "bitwise")

    # ---- SIGKILL mid-build: supervised retry must be invisible -------------
    big_entry = next(g for g in topo["graphs"] if g["fingerprint"] == big_fp)
    victim = big_entry["primary"]
    victim_pid = next(
        w["pid"] for w in topo["workers"] if w["worker"] == victim
    )
    solve_id = router.post(
        {"op": "solve", "graph": big_fp, "rhs_seed": RHS_SEED}
    )
    time.sleep(0.05)  # let the router forward; the cold build takes longer
    os.kill(victim_pid, signal.SIGKILL)
    recovered = router.read_response(solve_id)
    check(
        recovered.get("ok") is True,
        f"solve across a worker SIGKILL failed: {recovered}",
    )
    check(
        recovered["solution_fnv"] == truth_solve[big_fp],
        "retried solve after SIGKILL is not bitwise equal to the lone "
        f"server: {recovered['solution_fnv']} != {truth_solve[big_fp]}",
    )
    topo = router.call({"op": "topology"})
    victim_row = next(
        w for w in topo["workers"] if w["worker"] == victim
    )
    check(victim_row["state"] == "up", f"victim not respawned: {victim_row}")
    check(victim_row["restarts"] >= 1, "restart not counted in topology")
    check(
        victim_row["pid"] != victim_pid and pid_alive(victim_row["pid"]),
        "victim pid did not change across the restart",
    )
    # The replayed load is warm state: a repeat solve still matches.
    again = router.call({"op": "solve", "graph": big_fp, "rhs_seed": RHS_SEED})
    check(
        again.get("ok") is True
        and again["solution_fnv"] == truth_solve[big_fp],
        "post-restart solve drifted",
    )
    print(
        f"shard_smoke: SIGKILL of worker {victim} (pid {victim_pid}) "
        "recovered; retried solve bitwise-identical"
    )

    # ---- aggregated stats --------------------------------------------------
    # Re-warm the hammered fingerprint first: if its primary was the SIGKILL
    # victim, the restart emptied that worker's cache (replay restores the
    # load set, hierarchies rebuild on demand), so its per-entry row only
    # reappears once it is solved again.
    for _ in range(2):
        rewarm = router.call(
            {"op": "solve", "graph": hot_fp, "rhs_seed": RHS_SEED}
        )
        check(
            rewarm.get("ok") is True
            and rewarm["solution_fnv"] == truth_solve[hot_fp],
            "post-restart re-warm of the hot fingerprint drifted",
        )
    stats = router.call({"op": "stats"})
    check(stats.get("ok") is True, f"stats failed: {stats}")
    check(stats["workers"] == WORKERS, "stats worker count wrong")
    agg = stats["aggregate"]
    for field in ["hits", "misses", "evictions", "entries", "bytes",
                  "budget_bytes"]:
        check(field in agg["cache"], f"aggregate.cache missing {field}")
    check(agg["cache"]["hits"] >= 1, "aggregate cache hits not counted")
    check(agg["graphs_loaded"] >= len(snaps), "aggregate graphs_loaded low")
    rt = stats["router"]
    for field in ["requests", "routed", "retries", "restarts",
                  "replica_promotions", "replications", "shed",
                  "workers_up", "hot", "updates", "derived_graphs"]:
        check(field in rt, f"router stats missing {field}")
    check(rt["updates"] >= 2, "router did not count the updates")
    check(rt["derived_graphs"] >= 2, "router did not record derived "
          "fingerprints")
    check(rt["retries"] >= 1, "router did not count the retry")
    check(rt["restarts"] >= 1, "router did not count the restart")
    check(rt["replications"] >= 1, "router did not count the replication")
    check(rt["workers_up"] == WORKERS, "not all workers up in stats")
    check(hot_fp in rt["hot"], f"hot list missing {hot_fp}: {rt['hot']}")
    per_worker = stats["per_worker"]
    check(len(per_worker) == WORKERS, "per_worker breakdown wrong length")
    entries = []
    for row in per_worker:
        check(row["state"] == "up", f"worker not up in stats: {row}")
        check("stats" in row, f"up worker carries no stats doc: {row}")
        cache = row["stats"]["cache"]
        check("per_entry" in cache, "worker cache stats missing per_entry")
        entries.extend(cache["per_entry"])
    hot_rows = [e for e in entries if e["fingerprint"] == hot_fp]
    check(hot_rows, "hammered fingerprint absent from per-entry stats")
    check(
        sum(e["hits"] for e in hot_rows) >= 1,
        f"hammered fingerprint shows no hits: {hot_rows}",
    )

    # ---- SIGKILL mid-update: the retried update lands exactly once ---------
    # A fresh big graph that is loaded but never solved: the update's cold
    # hierarchy build is the slow in-flight work the SIGKILL interrupts, and
    # because the pre-update fingerprint is cold on every server, the
    # post-recovery build is deterministic whichever side of the kill the
    # worker was on.
    big2_wel = os.path.join(work, "big2.wel")
    big2_snap = os.path.join(work, "big2.hsnap")
    run(tool_bin, "gen", "grid2d", "160", big2_wel, "101")
    run(tool_bin, "snapshot-convert", big2_wel, big2_snap)
    big2_fp = run(tool_bin, "fingerprint", big2_snap)
    upd_c = [{"kind": "reweight", "u": 0, "v": 1, "weight": 2.5}]
    upd_c_path = os.path.join(work, "upd_c.json")
    with open(upd_c_path, "w", encoding="utf-8") as f:
        json.dump({"updates": upd_c}, f)
    big2_mut_snap = os.path.join(work, "big2_mut.hsnap")
    big2_mut_fp = run(
        tool_bin, "mutate", big2_snap, upd_c_path, big2_mut_snap
    )
    lone = Session([serve_bin])
    check(
        lone.call({"op": "load", "path": big2_mut_snap}).get("ok") is True,
        "phase-C lone load failed",
    )
    truth_c = lone.call(
        {"op": "solve", "graph": big2_mut_fp, "rhs_seed": RHS_SEED}
    )
    check(truth_c.get("ok") is True, "phase-C lone solve failed")
    shut = lone.call({"op": "shutdown"})
    check(shut.get("ok") is True, "phase-C lone shutdown failed")
    lone.finish()

    loaded = router.call({"op": "load", "path": big2_snap})
    check(loaded.get("ok") is True, f"big2 load failed: {loaded}")
    topo = router.call({"op": "topology"})
    big2_entry = next(
        g for g in topo["graphs"] if g["fingerprint"] == big2_fp
    )
    victim = big2_entry["primary"]
    victim_pid = next(
        w["pid"] for w in topo["workers"] if w["worker"] == victim
    )
    update_id = router.post(
        {"op": "update", "graph": big2_fp, "updates": upd_c}
    )
    time.sleep(0.05)  # let the router forward; the cold build takes longer
    os.kill(victim_pid, signal.SIGKILL)
    recovered = router.read_response(update_id)
    check(
        recovered.get("ok") is True,
        f"update across a worker SIGKILL failed: {recovered}",
    )
    check(
        recovered.get("new_graph") == big2_mut_fp,
        f"retried update fingerprint {recovered.get('new_graph')} != "
        f"{big2_mut_fp}",
    )
    # Exactly once: the next responses' strict id matching would catch any
    # duplicate emission for update_id; the derived fingerprint solves
    # bitwise identically to the lone cold truth.
    solved_c = router.call(
        {"op": "solve", "graph": big2_mut_fp, "rhs_seed": RHS_SEED}
    )
    check(
        solved_c.get("ok") is True
        and solved_c["solution_fnv"] == truth_c["solution_fnv"],
        "post-SIGKILL update solve is not bitwise equal to the lone cold "
        "truth",
    )
    stats = router.call({"op": "stats"})
    rt = stats["router"]
    check(rt["restarts"] >= 2, "second restart not counted")
    check(rt["updates"] >= 3, "SIGKILL-phase update not counted")
    check(rt["derived_graphs"] >= 3, "derived fingerprint not recorded")
    topo = router.call({"op": "topology"})
    derived = {d["fingerprint"]: d for d in topo.get("derived", [])}
    check(
        big2_mut_fp in derived
        and derived[big2_mut_fp]["root"] == big2_fp,
        f"topology derived map missing {big2_mut_fp}: {sorted(derived)}",
    )
    states = [w["state"] for w in topo["workers"]]
    check(states == ["up"] * WORKERS, f"workers not all up: {states}")
    print(
        f"shard_smoke: SIGKILL of worker {victim} mid-update recovered; "
        "retried update landed exactly once"
    )

    # ---- shutdown ----------------------------------------------------------
    all_pids = [w["pid"] for w in topo["workers"]]
    shut = router.call({"op": "shutdown"})
    check(shut.get("ok") is True, f"shutdown failed: {shut}")
    check(shut.get("workers_stopped") == WORKERS, f"bad shutdown: {shut}")
    router.finish()
    deadline = time.time() + 10
    while time.time() < deadline and any(pid_alive(p) for p in all_pids):
        time.sleep(0.05)
    survivors = [p for p in all_pids if pid_alive(p)]
    check(not survivors, f"worker processes survived shutdown: {survivors}")

    print("shard_smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
