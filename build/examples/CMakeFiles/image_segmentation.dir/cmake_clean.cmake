file(REMOVE_RECURSE
  "CMakeFiles/image_segmentation.dir/image_segmentation.cpp.o"
  "CMakeFiles/image_segmentation.dir/image_segmentation.cpp.o.d"
  "image_segmentation"
  "image_segmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_segmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
