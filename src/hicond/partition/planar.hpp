// The planar / minor-free decomposition pipeline (Theorems 2.2 and 2.3).
//
// The paper's route: build a sparse subgraph preconditioner B of A with
// x'Ax < k x'Bx and only a small fraction of non-tree edges; prune B's
// degree-1 hanging trees and compress its degree-2 paths to expose the small
// core W; cut the lightest edge on every W-W path, which splits B into
// vertex-disjoint trees (each holding one w in W); decompose every tree with
// the Theorem 2.1 algorithm. Cut edges cost at most a factor 2 in closure
// conductance inside B, and the k-preconditioning relation transfers the
// conductance to A at a further factor k: phi_A >= phi_B / k (Theorem 2.2
// proves 1/(4k) from phi_B >= 1/4).
//
// Substitution note (see DESIGN.md): the paper obtains B from the planar
// miniaturization of [Koutis-Miller SODA'07] (Theorem 2.2) or low-stretch
// trees + [Spielman-Teng] augmentation (Theorem 2.3). We build B as a
// maximum-weight or low-stretch spanning tree with Vaidya augmentation and
// *measure* k = lambda_max(A, B) instead of assuming it; the pipeline
// downstream of B is implemented exactly as in the paper.
#pragma once

#include <cstdint>

#include "hicond/graph/graph.hpp"
#include "hicond/partition/decomposition.hpp"
#include "hicond/precond/subgraph.hpp"
#include "hicond/tree/tree_decomposition.hpp"

namespace hicond {

struct PlanarDecompOptions {
  SpanningTreeKind tree_kind = SpanningTreeKind::max_weight;
  /// Fraction of n used as the Vaidya subtree count when augmenting the
  /// spanning tree into B; smaller = sparser B = larger measured k.
  double off_tree_fraction = 0.05;
  /// Skip the Lanczos measurement of k (it needs a B-solver) when false.
  bool measure_k = true;
  TreeDecompOptions tree_options{};
  std::uint64_t seed = 1;
};

struct PlanarDecompResult {
  Decomposition decomposition;
  Graph subgraph_b;     ///< the preconditioner subgraph B
  Graph forest;         ///< B minus the cut set C (what was decomposed)
  double measured_k = 0.0;  ///< lambda_max(A, B) estimate (0 if not measured)
  vidx core_size = 0;       ///< |W|
  vidx cut_edges = 0;       ///< |C|
};

/// Run the Theorem 2.2/2.3 pipeline on any graph (the guarantees of the
/// paper apply to planar / minor-free inputs; the algorithm itself is
/// oblivious to planarity).
[[nodiscard]] PlanarDecompResult planar_decomposition(
    const Graph& a, const PlanarDecompOptions& options = {});

/// The pruning/cutting stage alone: strip degree-1 vertices, locate the core
/// W (degree >= 3 after stripping), cut the lightest edge on every W-W path
/// and on every W-free cycle. Returns the resulting forest and reports
/// |W| / |C|.
[[nodiscard]] Graph cut_to_forest(const Graph& b, vidx* core_size_out = nullptr,
                                  vidx* cut_edges_out = nullptr);

}  // namespace hicond
