#include "hicond/la/tree_solver.hpp"

#include <gtest/gtest.h>

#include "hicond/graph/generators.hpp"
#include "hicond/la/vector_ops.hpp"
#include "hicond/util/rng.hpp"

namespace hicond {
namespace {

void check_solves(const Graph& g, std::uint64_t seed) {
  const vidx n = g.num_vertices();
  const ForestSolver solver(g);
  Rng rng(seed);
  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (auto& v : x_true) v = rng.uniform(-1.0, 1.0);
  la::remove_mean(x_true);
  std::vector<double> b(static_cast<std::size_t>(n));
  g.laplacian_apply(x_true, b);
  const auto x = solver.solve(b);
  std::vector<double> check(static_cast<std::size_t>(n));
  g.laplacian_apply(x, check);
  for (std::size_t i = 0; i < check.size(); ++i) {
    EXPECT_NEAR(check[i], b[i], 1e-9);
  }
}

TEST(ForestSolver, Path) { check_solves(gen::path(50, gen::WeightSpec::uniform(0.5, 5.0), 2), 1); }

TEST(ForestSolver, Star) { check_solves(gen::star(40, gen::WeightSpec::uniform(1.0, 3.0), 3), 2); }

TEST(ForestSolver, RandomTrees) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    check_solves(gen::random_tree(200, gen::WeightSpec::lognormal(0.0, 1.5), seed),
                 seed);
  }
}

TEST(ForestSolver, BinaryTree) { check_solves(gen::binary_tree(8), 4); }

TEST(ForestSolver, DisconnectedForest) {
  std::vector<WeightedEdge> edges{{0, 1, 2.0}, {1, 2, 1.0}, {3, 4, 3.0}};
  const Graph g(6, edges);  // components {0,1,2}, {3,4}, {5}
  const ForestSolver solver(g);
  EXPECT_EQ(solver.num_components(), 3);
  // rhs mean-free per component.
  std::vector<double> b{1.0, 0.0, -1.0, 2.0, -2.0, 0.0};
  const auto x = solver.solve(b);
  std::vector<double> check(6);
  g.laplacian_apply(x, check);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(check[i], b[i], 1e-12);
  // Mean-free per component.
  EXPECT_NEAR(x[0] + x[1] + x[2], 0.0, 1e-12);
  EXPECT_NEAR(x[3] + x[4], 0.0, 1e-12);
  EXPECT_NEAR(x[5], 0.0, 1e-12);
}

TEST(ForestSolver, RejectsCyclicGraph) {
  EXPECT_THROW(ForestSolver(gen::cycle(4)), invalid_argument_error);
}

TEST(ForestSolver, MatchesKnownTwoVertexSolution) {
  std::vector<WeightedEdge> edges{{0, 1, 4.0}};
  const Graph g(2, edges);
  const ForestSolver solver(g);
  const std::vector<double> b{2.0, -2.0};
  const auto x = solver.solve(b);
  // 4(x0 - x1) = 2 with x0 + x1 = 0 -> x0 = 0.25, x1 = -0.25.
  EXPECT_NEAR(x[0], 0.25, 1e-12);
  EXPECT_NEAR(x[1], -0.25, 1e-12);
}

TEST(ForestSolver, LargeTreeLinearTimeSmoke) {
  const Graph g = gen::random_tree(200000, gen::WeightSpec::uniform(1.0, 2.0), 5);
  check_solves(g, 6);
}

}  // namespace
}  // namespace hicond
