#include "hicond/precond/steiner.hpp"

#include <gtest/gtest.h>

#include "hicond/graph/connectivity.hpp"
#include "hicond/graph/generators.hpp"
#include "hicond/graph/quotient.hpp"
#include "hicond/la/vector_ops.hpp"
#include "hicond/partition/fixed_degree.hpp"
#include "hicond/precond/schur.hpp"
#include "hicond/util/rng.hpp"

namespace hicond {
namespace {

Decomposition halves(vidx n) {
  Decomposition d;
  d.num_clusters = 2;
  d.assignment.resize(static_cast<std::size_t>(n));
  for (vidx v = 0; v < n; ++v) {
    d.assignment[static_cast<std::size_t>(v)] = v < n / 2 ? 0 : 1;
  }
  return d;
}

TEST(SteinerGraph, Definition31Structure) {
  const Graph a = gen::grid2d(4, 4, gen::WeightSpec::uniform(1.0, 2.0), 3);
  const Decomposition p = halves(16);
  const Graph s = build_steiner_graph(a, p);
  EXPECT_EQ(s.num_vertices(), 18);  // 16 leaves + 2 roots
  // Leaves connect only to their root with weight vol_A(u).
  for (vidx v = 0; v < 16; ++v) {
    EXPECT_EQ(s.degree(v), 1);
    const vidx root = 16 + p.assignment[static_cast<std::size_t>(v)];
    EXPECT_DOUBLE_EQ(s.edge_weight(v, root), a.vol(v));
  }
  // Root-root edge carries cap(V_0, V_1).
  const Graph q = quotient_graph(a, p.assignment);
  EXPECT_DOUBLE_EQ(s.edge_weight(16, 17), q.edge_weight(0, 1));
}

TEST(SteinerPreconditioner, ApplyMatchesExplicitFormula) {
  // M^{-1} r = D^{-1} r + R Q^+ R' r: check against a dense computation.
  const Graph a = gen::grid2d(4, 3, gen::WeightSpec::uniform(1.0, 3.0), 5);
  const Decomposition p = halves(12);
  const SteinerPreconditioner sp = SteinerPreconditioner::build(a, p);
  Rng rng(2);
  std::vector<double> r(12);
  for (auto& v : r) v = rng.uniform(-1.0, 1.0);
  la::remove_mean(r);
  std::vector<double> z(12);
  sp.apply(r, z);
  // Dense path: rq = R'r; solve quotient; broadcast.
  const Graph q = quotient_graph(a, p.assignment);
  std::vector<double> rq(2, 0.0);
  for (vidx v = 0; v < 12; ++v) {
    rq[static_cast<std::size_t>(p.assignment[static_cast<std::size_t>(v)])] +=
        r[static_cast<std::size_t>(v)];
  }
  // Q is a single edge: pseudo-solve by hand. Q = [[w,-w],[-w,w]].
  const double w = q.edge_weight(0, 1);
  // Solve Q y = rq with mean-free y: y0 - y1 = rq[0] / w; y0 + y1 = 0.
  const double y0 = rq[0] / (2.0 * w);
  const double y1 = -y0;
  for (vidx v = 0; v < 12; ++v) {
    const double expected =
        r[static_cast<std::size_t>(v)] / a.vol(v) +
        (p.assignment[static_cast<std::size_t>(v)] == 0 ? y0 : y1);
    EXPECT_NEAR(z[static_cast<std::size_t>(v)], expected, 1e-10);
  }
}

TEST(SteinerPreconditioner, OperatorEqualsApply) {
  const Graph a = gen::grid2d(5, 5, gen::WeightSpec::uniform(1.0, 2.0), 7);
  const auto fd = fixed_degree_decomposition(a);
  const SteinerPreconditioner sp =
      SteinerPreconditioner::build(a, fd.decomposition);
  const LinearOperator op = sp.as_operator();
  Rng rng(3);
  std::vector<double> r(25);
  for (auto& v : r) v = rng.uniform(-1.0, 1.0);
  std::vector<double> z1(25);
  std::vector<double> z2(25);
  sp.apply(r, z1);
  op(r, z2);
  EXPECT_LT(la::max_abs_diff(z1, z2), 1e-14);
}

TEST(SteinerPreconditioner, ApplyIsSymmetric) {
  // M^{-1} = D^{-1} + R Q^+ R' is symmetric: check r1' M^{-1} r2 = r2' M^{-1} r1.
  const Graph a = gen::grid2d(6, 4, gen::WeightSpec::uniform(1.0, 2.0), 9);
  const auto fd = fixed_degree_decomposition(a);
  const SteinerPreconditioner sp =
      SteinerPreconditioner::build(a, fd.decomposition);
  Rng rng(5);
  std::vector<double> r1(24);
  std::vector<double> r2(24);
  for (auto& v : r1) v = rng.uniform(-1.0, 1.0);
  for (auto& v : r2) v = rng.uniform(-1.0, 1.0);
  std::vector<double> z1(24);
  std::vector<double> z2(24);
  sp.apply(r1, z1);
  sp.apply(r2, z2);
  EXPECT_NEAR(la::dot(r2, z1), la::dot(r1, z2), 1e-9);
}

TEST(SteinerPreconditioner, GrembanReductionConsistency) {
  // Solving S_P [x; y] = [r; 0] exactly must give x = apply(r) up to the
  // constant shift: verify via the explicit Steiner graph and a dense solve.
  const Graph a = gen::grid2d(3, 3, gen::WeightSpec::uniform(1.0, 2.0), 11);
  const Decomposition p = halves(9);
  const SteinerPreconditioner sp = SteinerPreconditioner::build(a, p);
  const Graph s = sp.steiner_graph();
  ASSERT_TRUE(is_connected(s));
  Rng rng(7);
  std::vector<double> r(9);
  for (auto& v : r) v = rng.uniform(-1.0, 1.0);
  la::remove_mean(r);
  // Dense pseudo-solve of the full Steiner system with padded rhs.
  std::vector<double> padded(11, 0.0);
  for (std::size_t i = 0; i < 9; ++i) padded[i] = r[i];
  const DenseMatrix ls = dense_laplacian(s);
  const auto full = laplacian_pseudo_solve_dense(ls, padded);
  std::vector<double> z(9);
  sp.apply(r, z);
  // Compare up to an additive constant on the first 9 entries.
  const double shift = full[0] - z[0];
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_NEAR(full[i] - z[i], shift, 1e-8);
  }
}

TEST(SteinerPreconditioner, SchurComplementConsistentWithEliminationIdentity) {
  // B = D - D R (Q + D_Q)^{-1} R' D must equal the dense Schur complement of
  // S_P with respect to the Steiner vertices.
  const Graph a =
      gen::random_planar_triangulation(10, gen::WeightSpec::uniform(1, 2), 3);
  const Decomposition p = halves(10);
  const DenseMatrix b_formula = steiner_schur_complement_dense(a, p);
  const Graph s = build_steiner_graph(a, p);
  std::vector<vidx> eliminate{10, 11};
  const DenseMatrix b_elim = schur_complement_dense(s, eliminate);
  EXPECT_LT(b_formula.frobenius_distance(b_elim), 1e-9);
}

TEST(SteinerPreconditioner, RejectsDisconnectedGraph) {
  std::vector<WeightedEdge> edges{{0, 1, 1.0}, {2, 3, 1.0}};
  const Graph a(4, edges);
  Decomposition p;
  p.num_clusters = 2;
  p.assignment = {0, 0, 1, 1};
  EXPECT_THROW((void)SteinerPreconditioner::build(a, p),
               invalid_argument_error);
}

TEST(SteinerPreconditioner, SingleClusterWorks) {
  const Graph a = gen::grid2d(3, 3, gen::WeightSpec::uniform(1.0, 2.0), 5);
  Decomposition p;
  p.num_clusters = 1;
  p.assignment.assign(9, 0);
  const SteinerPreconditioner sp = SteinerPreconditioner::build(a, p);
  // Quotient is a single vertex: M^{-1} degenerates to the Jacobi scale
  // plus a constant shift.
  Rng rng(7);
  std::vector<double> r(9);
  for (auto& v : r) v = rng.uniform(-1.0, 1.0);
  la::remove_mean(r);
  std::vector<double> z(9);
  sp.apply(r, z);
  for (vidx v = 0; v < 9; ++v) {
    EXPECT_NEAR(z[static_cast<std::size_t>(v)],
                r[static_cast<std::size_t>(v)] / a.vol(v), 1e-12);
  }
}

TEST(SteinerPreconditioner, QuotientMatchesDecompositionSize) {
  const Graph a = gen::grid3d(4, 4, 4, gen::WeightSpec::uniform(1.0, 2.0), 13);
  const auto fd = fixed_degree_decomposition(a);
  const SteinerPreconditioner sp =
      SteinerPreconditioner::build(a, fd.decomposition);
  EXPECT_EQ(sp.num_steiner_vertices(), fd.decomposition.num_clusters);
  EXPECT_LE(sp.num_steiner_vertices(), a.num_vertices() / 2);
}

}  // namespace
}  // namespace hicond
