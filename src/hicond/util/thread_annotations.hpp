// Clang thread-safety-analysis annotations and an annotated mutex.
//
// Clang's -Wthread-safety analysis statically proves lock discipline: every
// access to a HICOND_GUARDED_BY(mu) member must happen while `mu` is held,
// and every HICOND_REQUIRES(mu) function must only be called under it. The
// analysis only understands types that carry capability attributes, which
// std::mutex / std::lock_guard do not -- so this header ships a minimal
// annotated wrapper pair (hicond::Mutex / hicond::MutexLock) around
// std::mutex, in the style of the LLVM/Abseil mutex shims.
//
// On non-clang compilers every macro expands to nothing and Mutex/MutexLock
// behave exactly like std::mutex/std::lock_guard; the annotations are a
// compile-time contract only. Clang builds promote violations to errors
// (-Werror=thread-safety, wired in the top-level CMakeLists); the hicond-tidy
// CI job builds with clang, so the contract is enforced on every push.
#pragma once

#include <mutex>

#if defined(__clang__)
#define HICOND_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define HICOND_THREAD_ANNOTATION(x)
#endif

/// Declares a type to be a lockable capability ("mutex" in diagnostics).
#define HICOND_CAPABILITY(x) HICOND_THREAD_ANNOTATION(capability(x))
/// Declares an RAII type that acquires in its ctor and releases in its dtor.
#define HICOND_SCOPED_CAPABILITY HICOND_THREAD_ANNOTATION(scoped_lockable)
/// Data member readable/writable only while `x` is held.
#define HICOND_GUARDED_BY(x) HICOND_THREAD_ANNOTATION(guarded_by(x))
/// Pointer member whose pointee is protected by `x`.
#define HICOND_PT_GUARDED_BY(x) HICOND_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function callable only while every listed capability is held.
#define HICOND_REQUIRES(...) \
  HICOND_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function that acquires the listed capabilities and returns holding them.
#define HICOND_ACQUIRE(...) \
  HICOND_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function that releases the listed capabilities.
#define HICOND_RELEASE(...) \
  HICOND_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function that acquires the capability iff it returns `result`.
#define HICOND_TRY_ACQUIRE(result, ...) \
  HICOND_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))
/// Function that must NOT be called while the listed capabilities are held.
#define HICOND_EXCLUDES(...) HICOND_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Escape hatch: disables the analysis for one function.
#define HICOND_NO_THREAD_SAFETY_ANALYSIS \
  HICOND_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace hicond {

/// std::mutex with capability attributes so -Wthread-safety can track it.
class HICOND_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HICOND_ACQUIRE() { mu_.lock(); }
  void unlock() HICOND_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() HICOND_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  std::mutex mu_;
};

/// RAII lock for hicond::Mutex (std::lock_guard carries no attributes, so
/// the analysis cannot see through it).
class HICOND_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) HICOND_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() HICOND_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace hicond
