// Structured solver reports: where setup time, V-cycle time and CG
// iterations actually go.
//
// A SolverReport captures the full shape of one multilevel Steiner solve:
// per-level hierarchy statistics (vertex/edge/cluster counts, the reduction
// factor rho, the closure-conductance phi distribution of the level's
// decomposition), per-level V-cycle timings, the coarsest-level direct
// solve, and the PCG residual trace. LaplacianSolver::report() assembles
// one; hicond_tool --report and hicond_bench print/serialize them.
#pragma once

#include <string>
#include <vector>

#include "hicond/la/cg.hpp"
#include "hicond/partition/hierarchy.hpp"
#include "hicond/precond/multilevel.hpp"

namespace hicond::obs {

struct SolverReportOptions {
  /// Evaluate the per-level closure-conductance distribution. Costs one
  /// conductance bound per cluster per level (exact for closures up to
  /// `exact_limit` vertices, Cheeger bound beyond); disable for very large
  /// graphs when only timings are wanted.
  bool quality = true;
  vidx exact_limit = 20;
};

/// One level of the laminar hierarchy, as reported.
struct LevelReport {
  int level = 0;           ///< 0 = finest (the input graph)
  vidx vertices = 0;
  eidx edges = 0;
  vidx clusters = 0;       ///< cluster count of this level's decomposition
  double reduction = 0.0;  ///< rho = vertices / clusters
  double build_seconds = 0.0;  ///< contraction time spent producing level+1

  // Closure-conductance distribution over this level's clusters (certified
  // lower bounds; phi_exact when every closure was evaluated exactly).
  // Zeroed when SolverReportOptions::quality is off.
  double phi_min = 0.0;
  double phi_p50 = 0.0;
  double phi_p90 = 0.0;
  bool phi_exact = false;
  double cut_fraction = 0.0;  ///< edge weight crossing between clusters

  // V-cycle time attribution (accumulated over every apply so far).
  std::int64_t cycle_calls = 0;
  double cycle_seconds = 0.0;            ///< inclusive of coarser levels
  double cycle_seconds_exclusive = 0.0;  ///< this level only
};

struct SolverReport {
  // Problem + hierarchy shape.
  vidx vertices = 0;
  eidx edges = 0;
  int num_levels = 0;  ///< decomposed levels (excludes the coarsest graph)
  vidx coarsest_vertices = 0;
  eidx coarsest_edges = 0;
  double operator_complexity = 0.0;
  double setup_seconds = 0.0;  ///< hierarchy + preconditioner construction
  std::vector<LevelReport> levels;

  // Coarsest-level exact solves.
  std::int64_t coarsest_calls = 0;
  double coarsest_seconds = 0.0;

  // PCG solve side (zeroed until a solve ran).
  int solves = 0;
  int iterations = 0;  ///< of the most recent solve
  bool converged = false;
  double final_relative_residual = 0.0;
  double solve_seconds = 0.0;  ///< accumulated over all solves
  std::vector<double> residual_history;  ///< ||r_i|| of the most recent solve

  /// Machine-readable form (schema documented in docs/OBSERVABILITY.md).
  [[nodiscard]] std::string to_json() const;

  /// Human-readable multi-line summary table.
  [[nodiscard]] std::string to_text() const;
};

/// Assemble the hierarchy/preconditioner half of a report from a built
/// multilevel solver (the solve half stays zeroed; LaplacianSolver fills it).
[[nodiscard]] SolverReport make_solver_report(
    const MultilevelSteinerSolver& solver,
    const SolverReportOptions& options = {});

}  // namespace hicond::obs
