#include "hicond/graph/graph.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "hicond/graph/builder.hpp"
#include "hicond/util/parallel.hpp"

namespace hicond {

namespace {
/// Relative tolerance for comparing weights that were accumulated in
/// different summation orders (mirror arcs, cached volumes).
bool weights_close(double a, double b) {
  const double scale = std::max({1.0, std::abs(a), std::abs(b)});
  return std::abs(a - b) <= 1e-10 * scale;
}
}  // namespace

Graph Graph::from_csr(vidx n, std::vector<eidx> offsets,
                      std::vector<vidx> targets, std::vector<double> weights) {
  HICOND_CHECK(n >= 0, "vertex count must be nonnegative");
  Graph g;
  g.n_ = n;
  g.offsets_ = std::move(offsets);
  g.targets_ = std::move(targets);
  g.weights_ = std::move(weights);
  // Validate the adopted structure before deriving volumes from it; this is
  // the untrusted entry point, so the sweep runs at every validation level.
  g.validate_structure();
  g.finalize_volumes();
  return g;
}

void Graph::validate_structure() const {
  HICOND_CHECK(offsets_.size() == static_cast<std::size_t>(n_) + 1,
               "CSR offsets size must be num_vertices + 1");
  HICOND_CHECK(offsets_.front() == 0, "CSR offsets must start at 0");
  for (std::size_t v = 0; v + 1 < offsets_.size(); ++v) {
    HICOND_CHECK(offsets_[v] <= offsets_[v + 1],
                 "CSR offsets must be nondecreasing (ragged offsets)");
  }
  HICOND_CHECK(offsets_.back() == static_cast<eidx>(targets_.size()),
               "CSR offsets must end at the arc count (ragged offsets)");
  HICOND_CHECK(targets_.size() == weights_.size(),
               "CSR targets and weights must have equal size");
  for (vidx v = 0; v < n_; ++v) {
    const auto lo = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v)]);
    const auto hi =
        static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v) + 1]);
    for (std::size_t k = lo; k < hi; ++k) {
      const vidx u = targets_[k];
      HICOND_CHECK(u >= 0 && u < n_, "CSR target out of range");
      HICOND_CHECK(u != v, "self-loops are not allowed");
      HICOND_CHECK(k == lo || targets_[k - 1] < u,
                   "CSR row targets must be strictly increasing "
                   "(unsorted or duplicate arcs)");
      HICOND_CHECK(std::isfinite(weights_[k]) && weights_[k] > 0.0,
                   "edge weights must be positive and finite");
      // Symmetry: the mirror arc (u, v) must exist with matching weight.
      const auto ulo = static_cast<std::size_t>(
          offsets_[static_cast<std::size_t>(u)]);
      const auto uhi = static_cast<std::size_t>(
          offsets_[static_cast<std::size_t>(u) + 1]);
      const auto begin = targets_.begin() + static_cast<std::ptrdiff_t>(ulo);
      const auto end = targets_.begin() + static_cast<std::ptrdiff_t>(uhi);
      const auto it = std::lower_bound(begin, end, v);
      HICOND_CHECK(it != end && *it == v,
                   "graph must be symmetric: mirror arc missing");
      const auto mirror = static_cast<std::size_t>(it - targets_.begin());
      HICOND_CHECK(weights_close(weights_[k], weights_[mirror]),
                   "graph must be symmetric: mirror arc weight differs");
    }
  }
}

void Graph::validate() const {
  validate_structure();
  HICOND_CHECK(vol_.size() == static_cast<std::size_t>(n_),
               "cached volume array size mismatch");
  double total = 0.0;
  for (vidx v = 0; v < n_; ++v) {
    double s = 0.0;
    for (eidx a = offsets_[static_cast<std::size_t>(v)];
         a < offsets_[static_cast<std::size_t>(v) + 1]; ++a) {
      s += weights_[static_cast<std::size_t>(a)];
    }
    HICOND_CHECK(weights_close(s, vol_[static_cast<std::size_t>(v)]),
                 "cached vertex volume inconsistent with weights");
    total += vol_[static_cast<std::size_t>(v)];
  }
  HICOND_CHECK(weights_close(total, total_volume_),
               "cached total volume inconsistent with weights");
}

Graph::Graph(vidx n) : n_(n), offsets_(static_cast<std::size_t>(n) + 1, 0) {
  HICOND_CHECK(n >= 0, "vertex count must be nonnegative");
  vol_.assign(static_cast<std::size_t>(n), 0.0);
}

Graph::Graph(vidx n, std::span<const WeightedEdge> edges) {
  GraphBuilder builder(n);
  for (const auto& e : edges) builder.add_edge(e.u, e.v, e.weight);
  *this = builder.build();
}

vidx Graph::max_degree() const noexcept {
  vidx best = 0;
  for (vidx v = 0; v < n_; ++v) best = std::max(best, degree(v));
  return best;
}

void Graph::finalize_volumes() {
  vol_.assign(static_cast<std::size_t>(n_), 0.0);
  parallel_for(static_cast<std::size_t>(n_), [&](std::size_t v) {
    double s = 0.0;
    for (eidx a = offsets_[v]; a < offsets_[v + 1]; ++a) {
      s += weights_[static_cast<std::size_t>(a)];
    }
    vol_[v] = s;
  });
  total_volume_ = std::accumulate(vol_.begin(), vol_.end(), 0.0);
}

double Graph::edge_weight(vidx u, vidx v) const {
  const auto nbrs = neighbors(u);
  const auto ws = weights(u);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    if (nbrs[i] == v) return ws[i];
  }
  return 0.0;
}

bool Graph::has_edge(vidx u, vidx v) const {
  if (degree(u) > degree(v)) std::swap(u, v);
  for (vidx w : neighbors(u)) {
    if (w == v) return true;
  }
  return false;
}

bool Graph::identical_to(const Graph& other) const noexcept {
  if (n_ != other.n_ || offsets_ != other.offsets_ ||
      targets_ != other.targets_) {
    return false;
  }
  if (weights_.size() != other.weights_.size()) return false;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    // Bitwise comparison: equal canonical graphs carry identical weight
    // bits (weights are positive finite, so IEEE == is bit equality here).
    if (weights_[i] != other.weights_[i]) return false;  // float-eq: exact
  }
  return true;
}

std::vector<WeightedEdge> Graph::edge_list() const {
  std::vector<WeightedEdge> edges;
  edges.reserve(static_cast<std::size_t>(num_edges()));
  for (vidx u = 0; u < n_; ++u) {
    const auto nbrs = neighbors(u);
    const auto ws = weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (u < nbrs[i]) edges.push_back({u, nbrs[i], ws[i]});
    }
  }
  return edges;
}

void Graph::laplacian_apply(std::span<const double> x,
                            std::span<double> y) const {
  HICOND_CHECK(x.size() == static_cast<std::size_t>(n_), "x size mismatch");
  HICOND_CHECK(y.size() == static_cast<std::size_t>(n_), "y size mismatch");
  parallel_for(static_cast<std::size_t>(n_), [&](std::size_t v) {
    double acc = vol_[v] * x[v];
    for (eidx a = offsets_[v]; a < offsets_[v + 1]; ++a) {
      acc -= weights_[static_cast<std::size_t>(a)] *
             x[static_cast<std::size_t>(targets_[static_cast<std::size_t>(a)])];
    }
    y[v] = acc;
  });
}

void Graph::laplacian_apply_block(std::span<const double> x,
                                  std::span<double> y, int k) const {
  const auto n = static_cast<std::size_t>(n_);
  HICOND_CHECK(k >= 1, "block width must be positive");
  HICOND_CHECK(x.size() == n * static_cast<std::size_t>(k),
               "x block size mismatch");
  HICOND_CHECK(y.size() == n * static_cast<std::size_t>(k),
               "y block size mismatch");
  // Column chunks bound the per-vertex accumulator array; within a chunk the
  // arc metadata is loaded once and fans out to every column. Per column the
  // accumulation order (vol term first, then arcs in CSR order) is exactly
  // laplacian_apply's, which keeps the batched path bitwise identical.
  constexpr int kChunk = 8;
  for (int j0 = 0; j0 < k; j0 += kChunk) {
    const int jc = std::min(kChunk, k - j0);
    parallel_for(n, [&](std::size_t v) {
      double acc[kChunk];
      for (int j = 0; j < jc; ++j) {
        acc[j] = vol_[v] *
                 x[static_cast<std::size_t>(j0 + j) * n + v];
      }
      for (eidx a = offsets_[v]; a < offsets_[v + 1]; ++a) {
        const double w = weights_[static_cast<std::size_t>(a)];
        const auto t =
            static_cast<std::size_t>(targets_[static_cast<std::size_t>(a)]);
        for (int j = 0; j < jc; ++j) {
          acc[j] -= w * x[static_cast<std::size_t>(j0 + j) * n + t];
        }
      }
      for (int j = 0; j < jc; ++j) {
        y[static_cast<std::size_t>(j0 + j) * n + v] = acc[j];
      }
    });
  }
}

double Graph::laplacian_quadratic(std::span<const double> x) const {
  HICOND_CHECK(x.size() == static_cast<std::size_t>(n_), "x size mismatch");
  return parallel_sum(static_cast<std::size_t>(n_), [&](std::size_t v) {
    double acc = 0.0;
    for (eidx a = offsets_[v]; a < offsets_[v + 1]; ++a) {
      const auto u = static_cast<std::size_t>(
          targets_[static_cast<std::size_t>(a)]);
      if (u > v) {
        const double d = x[v] - x[u];
        acc += weights_[static_cast<std::size_t>(a)] * d * d;
      }
    }
    return acc;
  });
}

double cap(const Graph& g, std::span<const char> in_u,
           std::span<const char> in_w) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  HICOND_CHECK(in_u.size() == n && in_w.size() == n, "flag size mismatch");
  for (std::size_t v = 0; v < n; ++v) {
    // Exceptions must not escape an OpenMP region; validate up front.
    HICOND_CHECK(!(in_u[v] && in_w[v]), "cap() sets must be disjoint");
  }
  return parallel_sum(n, [&](std::size_t v) {
    if (!in_u[v]) return 0.0;
    double acc = 0.0;
    const auto nbrs = g.neighbors(static_cast<vidx>(v));
    const auto ws = g.weights(static_cast<vidx>(v));
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (in_w[static_cast<std::size_t>(nbrs[i])]) acc += ws[i];
    }
    return acc;
  });
}

double out_weight(const Graph& g, std::span<const char> in_s) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  HICOND_CHECK(in_s.size() == n, "flag size mismatch");
  return parallel_sum(n, [&](std::size_t v) {
    if (!in_s[v]) return 0.0;
    double acc = 0.0;
    const auto nbrs = g.neighbors(static_cast<vidx>(v));
    const auto ws = g.weights(static_cast<vidx>(v));
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (!in_s[static_cast<std::size_t>(nbrs[i])]) acc += ws[i];
    }
    return acc;
  });
}

double vol_set(const Graph& g, std::span<const char> in_s) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  HICOND_CHECK(in_s.size() == n, "flag size mismatch");
  return parallel_sum(n, [&](std::size_t v) {
    return in_s[v] ? g.vol(static_cast<vidx>(v)) : 0.0;
  });
}

Graph induced_subgraph(const Graph& g, std::span<const vidx> vertices,
                       std::vector<vidx>* old_to_new) {
  std::vector<vidx> map(static_cast<std::size_t>(g.num_vertices()), -1);
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const vidx v = vertices[i];
    HICOND_CHECK(v >= 0 && v < g.num_vertices(), "vertex out of range");
    HICOND_CHECK(map[static_cast<std::size_t>(v)] == -1,
                 "duplicate vertex in induced_subgraph");
    map[static_cast<std::size_t>(v)] = static_cast<vidx>(i);
  }
  std::vector<WeightedEdge> edges;
  for (vidx v : vertices) {
    const auto nbrs = g.neighbors(v);
    const auto ws = g.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const vidx nu = map[static_cast<std::size_t>(nbrs[i])];
      const vidx nv = map[static_cast<std::size_t>(v)];
      if (nu != -1 && nv < nu) edges.push_back({nv, nu, ws[i]});
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(map);
  return Graph(static_cast<vidx>(vertices.size()), edges);
}

}  // namespace hicond
