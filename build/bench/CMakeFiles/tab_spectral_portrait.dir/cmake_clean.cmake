file(REMOVE_RECURSE
  "CMakeFiles/tab_spectral_portrait.dir/tab_spectral_portrait.cpp.o"
  "CMakeFiles/tab_spectral_portrait.dir/tab_spectral_portrait.cpp.o.d"
  "tab_spectral_portrait"
  "tab_spectral_portrait.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_spectral_portrait.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
