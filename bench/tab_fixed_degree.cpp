// TAB-S31 -- Section 3.1: the embarrassingly parallel construction gives a
// [1/(2 d^2 k), 2] decomposition for fixed-degree graphs, and by Theorem
// 3.5 a Steiner preconditioner with *constant* condition number.
//
// Part 1: measured phi vs the 1/(2 d^2 k) floor and rho vs 2, across
//         fixed-degree families and cluster caps k.
// Part 2: the headline -- kappa(A, M) of the two-level Steiner
//         preconditioner stays flat as n grows (it is the first linear-work
//         parallel construction with this property).
#include <cstdio>

#include "hicond/graph/generators.hpp"
#include "hicond/la/lanczos.hpp"
#include "hicond/partition/fixed_degree.hpp"
#include "hicond/precond/steiner.hpp"

int main() {
  using namespace hicond;

  std::printf("# TAB-S31 part 1: decomposition quality vs the "
              "1/(2 d^2 k) floor\n");
  std::printf("%-16s %6s %3s %3s %9s %12s %7s %7s\n", "family", "n", "d",
              "k", "phi_min", "floor", "rho", "gamma");
  struct Family {
    const char* name;
    Graph graph;
  };
  std::vector<Family> families;
  families.push_back(
      {"grid2d", gen::grid2d(20, 20, gen::WeightSpec::uniform(1, 2), 3)});
  families.push_back(
      {"torus2d", gen::torus2d(20, 20, gen::WeightSpec::uniform(1, 2), 3)});
  families.push_back(
      {"grid3d", gen::grid3d(8, 8, 8, gen::WeightSpec::uniform(1, 2), 3)});
  families.push_back({"random_regular4",
                      gen::random_regular(400, 4,
                                          gen::WeightSpec::uniform(1, 2), 3)});
  families.push_back({"oct_volume", gen::oct_volume(8, 8, 8, {}, 3)});
  for (const auto& f : families) {
    for (vidx k : {2, 4, 8}) {
      const auto fd = fixed_degree_decomposition(f.graph,
                                                 {.max_cluster_size = k});
      const auto stats = evaluate_decomposition(f.graph, fd.decomposition);
      const double d = static_cast<double>(f.graph.max_degree());
      std::printf("%-16s %6d %3.0f %3d %9.4f %12.6f %7.2f %7.4f\n", f.name,
                  f.graph.num_vertices(), d, k, stats.min_phi_lower,
                  1.0 / (2.0 * d * d * k), stats.reduction_factor,
                  stats.min_gamma);
    }
  }

  std::printf("#\n# TAB-S31 part 2: condition number kappa(A, M_steiner) vs "
              "n (should stay ~constant)\n");
  std::printf("%-16s %8s %8s %10s\n", "family", "n", "m_steiner", "kappa");
  for (vidx side : {8, 12, 16, 24, 32, 48}) {
    const Graph g =
        gen::grid2d(side, side, gen::WeightSpec::uniform(1, 2), 9);
    const auto fd = fixed_degree_decomposition(g, {.max_cluster_size = 4});
    const SteinerPreconditioner sp =
        SteinerPreconditioner::build(g, fd.decomposition);
    auto a = [&g](std::span<const double> x, std::span<double> y) {
      g.laplacian_apply(x, y);
    };
    const double kappa = condition_number_estimate(a, sp.as_operator(),
                                                   g.num_vertices(), 40, 5);
    std::printf("%-16s %8d %8d %10.3f\n", "grid2d", g.num_vertices(),
                sp.num_steiner_vertices(), kappa);
  }
  for (vidx side : {6, 8, 10, 13, 16}) {
    const Graph g = gen::oct_volume(side, side, side, {.field_orders = 3.0},
                                    9);
    const auto fd = fixed_degree_decomposition(g, {.max_cluster_size = 4});
    const SteinerPreconditioner sp =
        SteinerPreconditioner::build(g, fd.decomposition);
    auto a = [&g](std::span<const double> x, std::span<double> y) {
      g.laplacian_apply(x, y);
    };
    const double kappa = condition_number_estimate(a, sp.as_operator(),
                                                   g.num_vertices(), 40, 5);
    std::printf("%-16s %8d %8d %10.3f\n", "oct_volume", g.num_vertices(),
                sp.num_steiner_vertices(), kappa);
  }
  std::printf("# paper: constant condition number for fixed-degree graphs "
              "(Section 3.1 + Theorem 3.5)\n");
  return 0;
}
