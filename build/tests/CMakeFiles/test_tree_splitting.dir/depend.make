# Empty dependencies file for test_tree_splitting.
# This may be replaced when dependencies are built.
