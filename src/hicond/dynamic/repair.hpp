// Local repair of a laminar hierarchy after an edge-update batch.
//
// The expander-pruning insight (Saranurak-Wang; see PAPERS.md) is that an
// edge change damages a [phi, rho] decomposition only locally: clusters not
// incident to a touched edge keep their closure conductance verbatim, so a
// serving system does not need the full `build_hierarchy` rebuild that a
// fingerprint miss costs today. `repair_decomposition` recomputes closure
// conductance only for clusters incident to touched edges, marks the ones
// whose phi dropped below the floor -- or that became internally
// disconnected -- as *dirty*, dissolves the dirty set plus a 1-hop cluster
// halo, re-runs the Section 3.1 fixed-degree clustering on that induced
// subregion, and splices the result back with untouched clusters' ids
// preserved. The upper hierarchy is rebuilt only when the level-0 quotient
// actually changed (bitwise CSR comparison); otherwise every upper level and
// the coarsest graph are reused as-is.
//
// Repair *declines* (RepairResult::repaired == false, with a reason) when it
// would not be cheaper or meaningful: a hierarchy built by a contraction
// backend with no local re-clustering (anything but "fixed_degree"), a flat
// hierarchy (no contraction levels), or a dirty region exceeding
// RepairOptions::max_dirty_volume_fraction of the total volume. Callers fall
// back to a cold build; the HierarchyCache update path does exactly that.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "hicond/dynamic/update.hpp"
#include "hicond/partition/hierarchy.hpp"

namespace hicond::dynamic {

struct RepairOptions {
  /// Conductance floor below which a touched cluster is dirty. Negative
  /// means "derive the paper's fixed-degree guarantee 1 / (2 d^2 k) from the
  /// updated graph" (d = max degree, k = contraction.max_cluster_size).
  double phi_floor = -1.0;
  /// Decline when vol(dirty + halo) exceeds this fraction of total volume:
  /// past that point a cold rebuild is at least as cheap and yields the
  /// canonical (from-scratch) hierarchy.
  double max_dirty_volume_fraction = 0.25;
  /// Closures up to this many vertices are scored exactly; larger ones use
  /// their certified Cheeger lower bound (see graph/conductance.hpp).
  vidx closure_exact_limit = 20;
};

struct RepairResult {
  /// False when repair declined; `hierarchy` is then empty and
  /// `decline_reason` says why ("backend_unsupported", "flat_hierarchy",
  /// "dirty_volume_exceeded").
  bool repaired = false;
  std::string decline_reason;
  LaminarHierarchy hierarchy;
  /// Dissolved cluster ids (dirty + halo) in the *old* level-0 decomposition,
  /// sorted ascending. Empty for a quotient-only repair (e.g. a pure
  /// crossing-edge reweight).
  std::vector<vidx> dissolved;
  vidx clusters_dirty = 0;    ///< clusters whose phi dropped / disconnected
  vidx clusters_touched = 0;  ///< dissolved.size(): dirty + 1-hop halo
  bool upper_rebuilt = false; ///< level-0 quotient changed
  double dirty_volume_fraction = 0.0;
};

/// Repair `old_hierarchy` (built from the pre-update graph with `options`)
/// so that it is a valid hierarchy of `new_graph`, which must be the result
/// of apply_updates(old graph, updates). The repaired level-0 decomposition
/// preserves the partition of every non-dissolved cluster; dissolved ids are
/// reassigned deterministically (freed ids are refilled in ascending order,
/// overflow ids appended past the old cluster count, and when the repair
/// produced *fewer* clusters the surviving ids above the freed holes shift
/// down to keep ids dense). Upper levels reuse the old hierarchy when the
/// quotient is bitwise unchanged; otherwise they are rebuilt from the new
/// quotient with the same per-level seed schedule build_hierarchy would use.
[[nodiscard]] RepairResult repair_decomposition(
    const Graph& new_graph, std::span<const EdgeUpdate> updates,
    const LaminarHierarchy& old_hierarchy, const HierarchyOptions& options,
    const RepairOptions& repair = {});

}  // namespace hicond::dynamic
