// Fuzz target: obs::parse_json on arbitrary bytes. The parser's contract is
// to either return a document or throw invalid_argument_error -- any other
// exception, crash, hang, or sanitizer report is a bug (historically: stack
// overflow on deeply nested input before the recursion-depth limit).

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <tuple>

#include "hicond/obs/json.hpp"
#include "hicond/util/common.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  try {
    std::ignore = hicond::obs::parse_json(text);
  } catch (const hicond::invalid_argument_error&) {
    // the documented rejection path
  }
  return 0;
}
