// Properties of the Theorem 2.1 tree decomposition, certify-checked on
// random forests with random weights.

#include <gtest/gtest.h>
#include <omp.h>

#include <algorithm>
#include <stdexcept>
#include <string>

#include "hicond/certify/certify.hpp"
#include "hicond/graph/connectivity.hpp"
#include "hicond/graph/generators.hpp"
#include "hicond/tree/tree_decomposition.hpp"
#include "prop.hpp"

namespace hicond {
namespace {

Graph random_forest_like(Rng& rng, vidx n) {
  const std::uint64_t s = rng.next_u64();
  switch (rng.uniform_index(4)) {
    case 0: return gen::random_tree(std::max<vidx>(n, 1), {}, s);
    case 1: return gen::random_pruefer_tree(std::max<vidx>(n, 2), {}, s);
    case 2:
      return gen::random_tree(std::max<vidx>(n, 1),
                              gen::WeightSpec::uniform(0.25, 4.0), s);
    default:
      return gen::random_tree(std::max<vidx>(n, 1),
                              gen::WeightSpec::lognormal(0.0, 1.5), s);
  }
}

TEST(prop_tree, DecompositionEarnsItsCertificate) {
  // Shrinking removes vertices/edges, turning trees into forests -- the
  // certifier accepts forests, so every mutant stays a meaningful case.
  const auto property = [](const Graph& t) {
    const Decomposition d = tree_decomposition(t);
    const certify::Certificate cert = certify::certify_tree_decomposition(t, d);
    if (!cert.pass) throw std::runtime_error(cert.to_text());
  };
  prop::PropOptions o;
  o.cases = 60;
  o.min_size = 1;
  o.max_size = 48;
  o.seed = 101;
  const prop::PropResult r =
      prop::check_property(random_forest_like, property, o);
  EXPECT_TRUE(r.ok) << r.describe();
}

TEST(prop_tree, ParallelDecompositionThreadCountInvariantAndCertified) {
  // Drive the parallel tree-contraction paths (pointer-jumping bridge
  // decomposition, per-bridge planning) at two thread counts on every drawn
  // forest. The decomposition must be identical across counts (determinism
  // policy) and must earn its Theorem 2.1 certificate at each; shrinking
  // yields a minimal forest whenever either fails.
  const auto property = [](const Graph& t) {
    const int ambient = omp_get_max_threads();
    struct Restore {
      int ambient;
      ~Restore() { omp_set_num_threads(ambient); }
    } restore{ambient};
    Decomposition reference;
    for (const int threads : {1, 4}) {
      omp_set_num_threads(threads);
      const Decomposition d = tree_decomposition(t);
      const certify::Certificate cert =
          certify::certify_tree_decomposition(t, d);
      if (!cert.pass) {
        throw std::runtime_error("threads=" + std::to_string(threads) + "\n" +
                                 cert.to_text());
      }
      if (threads == 1) {
        reference = d;
      } else if (d.assignment != reference.assignment ||
                 d.num_clusters != reference.num_clusters) {
        throw std::runtime_error(
            "decomposition differs between 1 and " +
            std::to_string(threads) + " threads");
      }
    }
  };
  prop::PropOptions o;
  o.cases = 40;
  o.min_size = 1;
  o.max_size = 48;
  o.seed = 303;
  const prop::PropResult r =
      prop::check_property(random_forest_like, property, o);
  EXPECT_TRUE(r.ok) << r.describe();
}

TEST(prop_tree, ReductionFactorMeetsTheoremOnSingleTrees) {
  const auto property = [](const Graph& t) {
    // Vacuous on mutants that are no longer single trees of >= 6 vertices.
    if (!is_tree(t) || t.num_vertices() < 6) return;
    const Decomposition d = tree_decomposition(t);
    if (d.reduction_factor() < 6.0 / 5.0 - 1e-9) {
      throw std::runtime_error("rho = " +
                               std::to_string(d.reduction_factor()) +
                               " below the Theorem 2.1 bound 6/5");
    }
  };
  prop::PropOptions o;
  o.cases = 60;
  o.min_size = 6;
  o.max_size = 64;
  o.seed = 202;
  const prop::PropResult r =
      prop::check_property(random_forest_like, property, o);
  EXPECT_TRUE(r.ok) << r.describe();
}

}  // namespace
}  // namespace hicond
