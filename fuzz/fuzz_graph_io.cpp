// Fuzz target: the plain-text graph readers (edge list + METIS). Arbitrary
// bytes are fed as the stream contents; the readers must either return a
// valid graph or throw invalid_argument_error. A pre-scan clamps absurd
// header counts so the harness probes parsing logic instead of timing out
// on a single multi-gigabyte allocation the format legitimately requests.

#include <cctype>
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <tuple>

#include "hicond/graph/graph.hpp"
#include "hicond/graph/io.hpp"
#include "hicond/util/common.hpp"

namespace {

/// True when the first non-comment line carries a number longer than six
/// digits -- such headers declare >= 10^6 vertices/edges and only test the
/// allocator, not the parser.
bool header_is_huge(std::string_view text) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    std::size_t start = 0;
    while (start < line.size() &&
           std::isspace(static_cast<unsigned char>(line[start])) != 0) {
      ++start;
    }
    if (start == line.size()) continue;
    if (line[start] == '%' || line[start] == '#') continue;
    std::size_t digits = 0;
    for (std::size_t i = start; i < line.size(); ++i) {
      if (std::isdigit(static_cast<unsigned char>(line[i])) != 0) {
        if (++digits > 6) return true;
      } else {
        digits = 0;
      }
    }
    return false;  // only the header line matters
  }
  return false;
}

void feed(const std::string& text, hicond::Graph (*reader)(std::istream&)) {
  std::istringstream in(text);
  try {
    std::ignore = reader(in);
  } catch (const hicond::invalid_argument_error&) {
    // the documented rejection path
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  if (header_is_huge(text)) return 0;
  feed(text, &hicond::read_graph);
  feed(text, &hicond::read_metis);
  return 0;
}
