#include "hicond/partition/backends/fixed_degree_backend.hpp"

#include "hicond/partition/fixed_degree.hpp"
#include "hicond/util/common.hpp"

namespace hicond::partition {

std::string FixedDegreeBackend::options_key(
    const BackendOptions& options) const {
  // Consumed fields only: the Louvain/lowdiam knobs never affect this
  // backend's output, so they must not split the hierarchy cache.
  std::string key;
  detail::append_key_int(key, "fd.max_cluster_size",
                         options.max_cluster_size);
  detail::append_key_int(key, "fd.seed",
                         static_cast<long long>(options.seed));
  detail::append_key_int(key, "fd.perturb", options.perturb ? 1 : 0);
  return key;
}

Decomposition FixedDegreeBackend::decompose(
    const Graph& g, const BackendOptions& options) const {
  HICOND_CHECK(options.max_cluster_size >= 1,
               "fixed_degree max_cluster_size must be at least 1");
  FixedDegreeOptions fd;
  fd.max_cluster_size = options.max_cluster_size;
  fd.seed = options.seed;
  fd.perturb = options.perturb;
  return fixed_degree_decomposition(g, fd).decomposition;
}

}  // namespace hicond::partition
