#include "hicond/partition/refinement.hpp"

#include <algorithm>
#include <unordered_map>

#include "hicond/graph/connectivity.hpp"
#include "hicond/graph/quotient.hpp"
#include "hicond/util/float_eq.hpp"

namespace hicond {

RefinementResult refine_decomposition(const Graph& g, const Decomposition& d,
                                      const RefinementOptions& opt) {
  validate_decomposition(g, d);
  HICOND_CHECK(opt.gamma_floor >= 0.0 && opt.gamma_floor <= 1.0,
               "gamma_floor must be in [0, 1]");
  HICOND_CHECK(opt.max_rounds >= 0, "max_rounds must be >= 0");
  const vidx n = g.num_vertices();
  RefinementResult result;
  std::vector<vidx> assignment = d.assignment;

  std::unordered_map<vidx, double> share;
  std::vector<vidx> touched;  // cluster ids present in `share`, sorted below
  for (int round = 0; round < opt.max_rounds; ++round) {
    vidx moves_this_round = 0;
    for (vidx v = 0; v < n; ++v) {
      if (g.vol(v) <= 0.0) continue;
      share.clear();
      touched.clear();
      const auto nbrs = g.neighbors(v);
      const auto ws = g.weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const auto [it, inserted] = share.try_emplace(
            assignment[static_cast<std::size_t>(nbrs[i])], 0.0);
        it->second += ws[i];
        if (inserted) touched.push_back(it->first);
      }
      const vidx own = assignment[static_cast<std::size_t>(v)];
      const auto own_it = share.find(own);
      const double own_share = own_it != share.end() ? own_it->second : 0.0;
      if (own_share >= opt.gamma_floor * g.vol(v)) continue;
      // Argmax over the touched clusters in ascending-id order (never in
      // unordered_map order): ties on exactly-equal shares pick the lowest
      // cluster id, so the winner is the same on every run and platform.
      std::sort(touched.begin(), touched.end());
      vidx best = own;
      double best_share = own_share;
      for (const vidx c : touched) {
        const double w = share.at(c);
        if (w > best_share || (exactly_equal(w, best_share) && c < best)) {
          best_share = w;
          best = c;
        }
      }
      if (best != own && best_share > own_share) {
        assignment[static_cast<std::size_t>(v)] = best;
        ++moves_this_round;
      }
    }
    result.moves += moves_this_round;
    result.rounds = round + 1;
    if (moves_this_round == 0) break;
  }

  // Re-label: every connected piece of every (possibly split or emptied)
  // cluster becomes its own compact cluster id.
  std::vector<vidx> relabeled(static_cast<std::size_t>(n), -1);
  vidx next = 0;
  std::vector<vidx> stack;
  for (vidx s = 0; s < n; ++s) {
    if (relabeled[static_cast<std::size_t>(s)] != -1) continue;
    const vidx cluster = assignment[static_cast<std::size_t>(s)];
    const vidx id = next++;
    relabeled[static_cast<std::size_t>(s)] = id;
    stack.push_back(s);
    while (!stack.empty()) {
      const vidx v = stack.back();
      stack.pop_back();
      for (vidx u : g.neighbors(v)) {
        if (relabeled[static_cast<std::size_t>(u)] == -1 &&
            assignment[static_cast<std::size_t>(u)] == cluster) {
          relabeled[static_cast<std::size_t>(u)] = id;
          stack.push_back(u);
        }
      }
    }
  }
  result.decomposition.assignment = std::move(relabeled);
  result.decomposition.num_clusters = next;
  HICOND_RUN_VALIDATION(expensive, result.decomposition.validate(g));
  return result;
}

}  // namespace hicond
