// Integers decoded from snapshot bytes / NDJSON wire input reaching
// allocation sizes and subscripts without a cap, including evasions:
// propagation through variables and arithmetic, an unrelated check that
// must not sanitize, and re-tainting after a check.

#include <cstdint>
#include <vector>

namespace hicond {
void report_check_failure(const char* what);
}  // namespace hicond

#define HICOND_CHECK(expr, what)                       \
  do {                                                 \
    if (!(expr)) ::hicond::report_check_failure(what); \
  } while (false)

struct Reader {
  std::uint32_t u32(const char* what);
  std::uint64_t u64(const char* what);
};

struct JsonValue {
  double number = 0.0;
};

double number_or(const JsonValue& object, const char* name, double fallback);

void direct_sink(Reader& r, std::vector<int>& v) {
  v.resize(r.u32("count"));  // expect: untrusted-size
}

void through_variable(Reader& r, std::vector<int>& v) {
  const std::uint32_t n = r.u32("count");
  v.reserve(n);  // expect: untrusted-size
}

void through_arithmetic(Reader& r, std::vector<int>& v) {
  const std::uint64_t n = r.u64("count");
  const std::uint64_t padded = n + 16;
  v.resize(padded);  // expect: untrusted-size
}

int vector_subscript(Reader& r, const std::vector<int>& v) {
  const std::uint32_t i = r.u32("index");
  return v[i];  // expect: untrusted-size
}

int raw_subscript(Reader& r, const int* data) {
  const std::uint32_t i = r.u32("index");
  return data[i];  // expect: untrusted-size
}

void json_number_member(const JsonValue& field, std::vector<double>& rhs) {
  const auto count = static_cast<long long>(field.number);
  rhs.reserve(count);  // expect: untrusted-size
}

void number_or_helper(const JsonValue& spec, std::vector<double>& rhs) {
  const auto count = static_cast<int>(number_or(spec, "count", 1.0));
  rhs.resize(count);  // expect: untrusted-size
}

int* array_new(Reader& r) {
  const std::uint64_t n = r.u64("count");
  return new int[n];  // expect: untrusted-size
}

void unrelated_check_does_not_sanitize(Reader& r, std::vector<int>& v) {
  const std::uint32_t n = r.u32("count");
  const std::uint32_t limit = 100;
  HICOND_CHECK(limit > 0, "checks limit, says nothing about n");
  v.resize(n);  // expect: untrusted-size
}

void retainted_after_check(Reader& r, std::vector<int>& v) {
  std::uint32_t n = r.u32("count");
  HICOND_CHECK(n <= 64, "count out of range");
  n = r.u32("second_count");  // fresh taint after the check
  v.resize(n);  // expect: untrusted-size
}
