// Partitioner-backend registry tests: lookup and canonical options, the
// fixed-degree backend's bitwise equivalence with the direct Section 3.1
// call, validity and connectivity of the Louvain and low-diameter outputs,
// seed determinism of the random-shift construction, the boundary check
// that rejects malformed backend output, and end-to-end hierarchy builds
// with every registered backend.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "hicond/graph/closure.hpp"
#include "hicond/graph/connectivity.hpp"
#include "hicond/graph/generators.hpp"
#include "hicond/la/vector_ops.hpp"
#include "hicond/partition/backends/backend.hpp"
#include "hicond/partition/backends/fixed_degree_backend.hpp"
#include "hicond/partition/backends/louvain.hpp"
#include "hicond/partition/backends/low_diameter.hpp"
#include "hicond/partition/fixed_degree.hpp"
#include "hicond/partition/hierarchy.hpp"
#include "hicond/solver.hpp"
#include "hicond/util/common.hpp"
#include "hicond/util/rng.hpp"

namespace hicond {
namespace {

Graph test_graph() {
  return gen::grid2d(14, 14, gen::WeightSpec::uniform(0.5, 2.0), 11);
}

void expect_connected_clusters(const Graph& g, const Decomposition& d) {
  d.validate(g);
  for (vidx c = 0; c < d.num_clusters; ++c) {
    const ClosureGraph closure =
        closure_graph_of_assignment(g, d.assignment, c);
    EXPECT_TRUE(is_connected(closure.graph)) << "cluster " << c;
  }
}

// --- registry -------------------------------------------------------------

TEST(BackendRegistry, BuiltinsAreRegisteredAndLookupsResolve) {
  std::set<std::string> names;
  for (const partition::PartitionerBackend* b :
       partition::registered_backends()) {
    names.insert(std::string(b->name()));
    EXPECT_EQ(partition::find_backend(b->name()), b);
    EXPECT_EQ(&partition::get_backend(b->name()), b);
  }
  EXPECT_TRUE(names.contains("fixed_degree"));
  EXPECT_TRUE(names.contains("louvain"));
  EXPECT_TRUE(names.contains("lowdiam"));
}

TEST(BackendRegistry, UnknownNameIsNullOrThrows) {
  EXPECT_EQ(partition::find_backend("no_such_backend"), nullptr);
  EXPECT_THROW(static_cast<void>(partition::get_backend("no_such_backend")),
               invalid_argument_error);
  partition::BackendOptions bo;
  bo.backend = "no_such_backend";
  EXPECT_THROW(
      static_cast<void>(partition::checked_decompose(test_graph(), bo)),
      invalid_argument_error);
}

TEST(BackendRegistry, OnlyFixedDegreeSupportsRepair) {
  EXPECT_TRUE(partition::get_backend("fixed_degree").supports_repair());
  EXPECT_FALSE(partition::get_backend("louvain").supports_repair());
  EXPECT_FALSE(partition::get_backend("lowdiam").supports_repair());
}

TEST(BackendRegistry, OptionsKeysCarryTheBackendDiscriminator) {
  const partition::BackendOptions bo;  // identical knobs for every backend
  std::set<std::string> keys;
  for (const partition::PartitionerBackend* b :
       partition::registered_backends()) {
    partition::BackendOptions named = bo;
    named.backend = std::string(b->name());
    const std::string key = partition::backend_options_key(named);
    EXPECT_TRUE(key.starts_with("backend=" + named.backend + ";")) << key;
    keys.insert(key);
  }
  // Same knobs, different backends: every canonical rendering is distinct.
  EXPECT_EQ(keys.size(), partition::registered_backends().size());
}

// --- fixed_degree: the refactor must not change a single bit --------------

TEST(FixedDegreeBackend, BitwiseIdenticalToDirectCall) {
  const Graph g = test_graph();
  partition::BackendOptions bo;
  bo.max_cluster_size = 5;
  bo.seed = 42;
  const Decomposition via_registry = partition::checked_decompose(g, bo);
  const FixedDegreeResult direct = fixed_degree_decomposition(
      g, {.max_cluster_size = 5, .seed = 42});
  EXPECT_EQ(via_registry.assignment, direct.decomposition.assignment);
  EXPECT_EQ(via_registry.num_clusters, direct.decomposition.num_clusters);
  // A standalone instance (bypassing the registry) agrees too.
  const partition::FixedDegreeBackend standalone;
  const Decomposition via_instance = standalone.decompose(g, bo);
  EXPECT_EQ(via_instance.assignment, direct.decomposition.assignment);
}

// --- louvain --------------------------------------------------------------

TEST(LouvainBackend, ProducesValidConnectedNontrivialClusters) {
  const Graph g = test_graph();
  partition::BackendOptions bo;
  bo.backend = "louvain";
  bo.max_cluster_size = 8;
  const Decomposition d = partition::checked_decompose(g, bo);
  expect_connected_clusters(g, d);
  // A grid must actually coarsen under modularity clustering.
  EXPECT_LT(d.num_clusters, g.num_vertices() / 2);
  EXPECT_GT(d.num_clusters, 1);
}

TEST(LouvainBackend, IsDeterministicAndSeedFreeInItsKey) {
  const Graph g = test_graph();
  partition::BackendOptions a;
  a.backend = "louvain";
  partition::BackendOptions b = a;
  b.seed = 999;  // not consumed; must not change the key or the output
  EXPECT_EQ(partition::backend_options_key(a),
            partition::backend_options_key(b));
  const Decomposition da = partition::louvain_decomposition(g, a);
  const Decomposition db = partition::louvain_decomposition(g, b);
  EXPECT_EQ(da.assignment, db.assignment);
}

TEST(LouvainBackend, RejectsBadKnobs) {
  const Graph g = test_graph();
  partition::BackendOptions bo;
  bo.backend = "louvain";
  bo.resolution = 0.0;
  EXPECT_THROW(static_cast<void>(partition::checked_decompose(g, bo)),
               invalid_argument_error);
  bo.resolution = 1.0;
  bo.rounds = 0;
  EXPECT_THROW(static_cast<void>(partition::checked_decompose(g, bo)),
               invalid_argument_error);
}

// --- lowdiam --------------------------------------------------------------

TEST(LowDiameterBackend, ProducesValidConnectedClusters) {
  const Graph g = test_graph();
  partition::BackendOptions bo;
  bo.backend = "lowdiam";
  const Decomposition d = partition::checked_decompose(g, bo);
  expect_connected_clusters(g, d);
  EXPECT_GT(d.num_clusters, 1);
  EXPECT_LT(d.num_clusters, g.num_vertices());
}

TEST(LowDiameterBackend, SameSeedSameBitsDifferentSeedDifferentKey) {
  const Graph g = test_graph();
  partition::BackendOptions a;
  a.backend = "lowdiam";
  a.seed = 7;
  partition::BackendOptions b = a;
  b.seed = 8;
  const Decomposition a1 = partition::checked_decompose(g, a);
  const Decomposition a2 = partition::checked_decompose(g, a);
  EXPECT_EQ(a1.assignment, a2.assignment);
  EXPECT_EQ(a1.num_clusters, a2.num_clusters);
  // Different seed => different canonical options => different cache key,
  // whether or not the sampled shifts happen to produce the same partition.
  EXPECT_NE(partition::backend_options_key(a),
            partition::backend_options_key(b));
}

TEST(LowDiameterBackend, BetaControlsClusterCount) {
  const Graph g = test_graph();
  partition::BackendOptions fine;
  fine.backend = "lowdiam";
  fine.beta = 1.5;
  partition::BackendOptions coarse = fine;
  coarse.beta = 0.1;
  const Decomposition df = partition::checked_decompose(g, fine);
  const Decomposition dc = partition::checked_decompose(g, coarse);
  EXPECT_GT(df.num_clusters, dc.num_clusters);
}

// --- boundary check -------------------------------------------------------

TEST(BackendBoundary, RejectsDisconnectedClusters) {
  // Path a-b-c-d with {a, d} in one cluster: structurally valid but
  // internally disconnected, which the boundary check must reject.
  const Graph g = gen::grid2d(4, 1, gen::WeightSpec::unit(), 1);
  Decomposition d;
  d.assignment = {0, 1, 1, 0};
  d.num_clusters = 2;
  EXPECT_THROW(partition::validate_backend_output(g, d, "test"),
               invalid_argument_error);
}

TEST(BackendBoundary, CheckedDecomposeRejectsAMalformedBackend) {
  // A deliberately broken backend: every vertex with an even id in cluster
  // 0, odd ids in cluster 1 -- disconnected on any 1xN path of length >= 4.
  class ParityBackend final : public partition::PartitionerBackend {
   public:
    [[nodiscard]] std::string_view name() const noexcept override {
      return "test_parity";
    }
    [[nodiscard]] std::string options_key(
        const partition::BackendOptions&) const override {
      return {};
    }
    [[nodiscard]] Decomposition decompose(
        const Graph& g, const partition::BackendOptions&) const override {
      Decomposition d;
      d.assignment.resize(static_cast<std::size_t>(g.num_vertices()));
      for (vidx v = 0; v < g.num_vertices(); ++v) {
        d.assignment[static_cast<std::size_t>(v)] = v % 2;
      }
      d.num_clusters = 2;
      return d;
    }
  };
  partition::register_backend(std::make_unique<ParityBackend>());
  const Graph path = gen::grid2d(6, 1, gen::WeightSpec::unit(), 1);
  partition::BackendOptions bo;
  bo.backend = "test_parity";
  EXPECT_THROW(static_cast<void>(partition::checked_decompose(path, bo)),
               invalid_argument_error);
}

// --- end-to-end: hierarchy and solver with each backend -------------------

TEST(BackendHierarchy, EveryBuiltinBackendBuildsAndSolves) {
  const Graph g = test_graph();
  const vidx n = g.num_vertices();
  Rng rng(3);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  la::remove_mean(b);
  for (const std::string name : {"fixed_degree", "louvain", "lowdiam"}) {
    LaplacianSolverOptions options;
    options.hierarchy.contraction.backend = name;
    options.hierarchy.coarsest_size = 16;
    const LaplacianSolver solver(g, options);
    EXPECT_GE(solver.multilevel().hierarchy().num_levels(), 1) << name;
    std::vector<double> x(static_cast<std::size_t>(n), 0.0);
    const SolveStats stats = solver.solve(b, x);
    EXPECT_TRUE(stats.converged) << name;
  }
}

}  // namespace
}  // namespace hicond
