// Machine-readable certificates for the paper's guarantees.
//
// A Certificate is the output of the certify/ oracle layer: a list of named
// checks, each comparing an independently *recomputed* quantity against a
// bound from the paper (Theorem 2.1, Section 2, Theorem 3.5), plus the
// per-cluster closure-conductance evidence the checks were derived from.
// Certificates never throw on a failed bound -- a checker reports, it does
// not abort -- and serialize to JSON through the one obs/json writer so the
// schema stays consistent with every other exporter (see
// docs/STATIC_ANALYSIS.md, "Certification & fuzzing", for the schema).
#pragma once

#include <string>
#include <vector>

#include "hicond/util/common.hpp"

namespace hicond::certify {

/// Outcome of one named check.
enum class CheckStatus {
  pass,     ///< measured quantity satisfies the bound
  fail,     ///< measured quantity violates the bound
  skipped,  ///< not applicable (e.g. support bound on a disconnected graph)
};

[[nodiscard]] const char* to_string(CheckStatus s) noexcept;

/// One verified inequality: `measured relation bound` (e.g. phi >= 0.5).
struct Check {
  std::string name;     ///< stable identifier, e.g. "closure-conductance"
  CheckStatus status = CheckStatus::skipped;
  double measured = 0.0;   ///< oracle-recomputed quantity
  double bound = 0.0;      ///< the bound it is compared against
  std::string relation;    ///< ">=" or "<=": measured RELATION bound
  std::string method;      ///< how `measured` was obtained (brute-force, ...)
  std::string detail;      ///< free-text evidence, filled on failure
};

/// Per-cluster closure-conductance evidence backing the phi check.
struct ClusterEvidence {
  vidx cluster = 0;        ///< cluster id in the decomposition
  vidx size = 0;           ///< vertices in the cluster
  vidx closure_size = 0;   ///< vertices in the closure graph
  double phi_lower = 0.0;  ///< certified lower bound on closure conductance
  double phi_upper = 0.0;  ///< upper bound (== lower when exact)
  bool exact = false;      ///< brute-forced (true) or spectral (false)
};

/// The certificate: input fingerprint, targets, checks and evidence.
struct Certificate {
  std::string kind;        ///< "decomposition" | "tree" | "steiner-support"
  bool pass = false;       ///< conjunction of every non-skipped check

  // Input fingerprint, so a certificate can be matched to its instance.
  vidx num_vertices = 0;
  eidx num_edges = 0;
  double total_volume = 0.0;
  vidx num_clusters = 0;

  // Targets the instance was certified against.
  double phi_target = 0.0;
  double rho_target = 0.0;

  std::vector<Check> checks;
  std::vector<ClusterEvidence> clusters;

  /// Note on conventions (e.g. the paper's phi = 1/2 for trees is stated
  /// under its own conductance convention; see EXPERIMENTS.md).
  std::string note;

  /// Look up a check by name; nullptr when absent.
  [[nodiscard]] const Check* find_check(const std::string& name) const;

  /// Recompute `pass` from the checks (fail iff any check failed; a
  /// certificate with zero non-skipped checks does not pass).
  void finalize();

  /// Serialize via obs::JsonWriter (schema in docs/STATIC_ANALYSIS.md).
  [[nodiscard]] std::string to_json() const;

  /// One paragraph of human-readable text, one line per check.
  [[nodiscard]] std::string to_text() const;
};

}  // namespace hicond::certify
