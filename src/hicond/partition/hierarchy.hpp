// Recursive (laminar) decompositions and the quotient hierarchy.
//
// "The recursive computation of [phi, rho] decompositions leads to a laminar
// decomposition and a corresponding hierarchy of Steiner preconditioners"
// (Section 1.1). Each level contracts the previous graph by the fixed-degree
// decomposition of Section 3.1; the resulting chain of quotients is the
// backbone of the multilevel Steiner solver (and is the precursor of
// combinatorial-multigrid hierarchies).
#pragma once

#include <vector>

#include "hicond/graph/graph.hpp"
#include "hicond/partition/backends/backend.hpp"
#include "hicond/partition/decomposition.hpp"
#include "hicond/partition/refinement.hpp"

namespace hicond {

struct HierarchyOptions {
  /// Per-level contraction strategy and knobs. `contraction.backend` names
  /// a registered PartitionerBackend (partition/backends/backend.hpp);
  /// "fixed_degree" keeps the paper's Section 3.1 construction.
  partition::BackendOptions contraction{};
  vidx coarsest_size = 256;  ///< stop once the graph is this small
  int max_levels = 40;       ///< hard cap (contraction halves sizes, so ample)
  /// Run the gamma-guided refinement pass after each level's contraction
  /// (see partition/refinement.hpp). Off by default to keep the hierarchy
  /// the paper's plain recursive Section 3.1 construction.
  bool refine = false;
  RefinementOptions refinement{};
};

struct HierarchyLevel {
  Graph graph;                  ///< the level's graph (level 0 = input)
  Decomposition decomposition;  ///< clustering of this level's vertices
  /// Wall time build_hierarchy spent contracting this level into the next
  /// (decomposition + optional refinement + quotient). For SolverReport.
  double build_seconds = 0.0;
};

/// A laminar hierarchy: levels[l].decomposition maps level-l vertices to the
/// vertices of levels[l+1].graph (or of `coarsest` for the last level).
struct LaminarHierarchy {
  std::vector<HierarchyLevel> levels;
  Graph coarsest;

  [[nodiscard]] int num_levels() const noexcept {
    return static_cast<int>(levels.size());
  }

  /// Composite assignment from level-0 vertices to coarsest vertices.
  [[nodiscard]] Decomposition flatten() const;
};

/// Build the hierarchy by repeated contraction with the selected backend
/// (options.contraction.backend; the paper's fixed-degree construction by
/// default). Every level's decomposition passes the backend boundary check
/// (structural validity + connected clusters); an unknown backend name
/// throws invalid_argument_error.
[[nodiscard]] LaminarHierarchy build_hierarchy(
    const Graph& g, const HierarchyOptions& options = {});

}  // namespace hicond
