# Empty compiler generated dependencies file for hicond.
# This may be replaced when dependencies are built.
