// The AST/preprocessor checks behind hicond-tidy. One MacroUseLog +
// PPCallbacks pair is created per translation unit (FileIDs are
// per-SourceManager); runChecks then walks the TU once with a
// RecursiveASTVisitor and resolves the boundary-validation fixed point.
#pragma once

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "clang/Basic/SourceLocation.h"

namespace clang {
class ASTContext;
class PPCallbacks;
class SourceManager;
}  // namespace clang

namespace hicond_tidy {

class TidyContext;

/// Expansion sites of the validation macros (HICOND_CHECK,
/// HICOND_VALIDATE, HICOND_RUN_VALIDATION, HICOND_ASSERT,
/// HICOND_ASSERT_EXPENSIVE), recorded during preprocessing. Two queries:
/// boundary-validation asks "does this function body expand one?"
/// (anyInRange over expansion begins), and untrusted-size asks "is this
/// token inside a validation-macro invocation?" (containsOffset over the
/// full [begin, end] invocation ranges).
class MacroUseLog {
 public:
  void add(clang::FileID fid, unsigned offset);
  void addRange(clang::FileID fid, unsigned begin, unsigned end);
  [[nodiscard]] bool anyInRange(clang::FileID fid, unsigned begin,
                                unsigned end) const;
  [[nodiscard]] bool containsOffset(clang::FileID fid, unsigned offset) const;

 private:
  std::map<clang::FileID, std::vector<unsigned>> uses_;
  std::map<clang::FileID, std::vector<std::pair<unsigned, unsigned>>> ranges_;
};

std::unique_ptr<clang::PPCallbacks> makePPCallbacks(
    clang::SourceManager& sm, std::shared_ptr<MacroUseLog> log);

void runChecks(TidyContext& ctx, clang::ASTContext& ast,
               const MacroUseLog& macros);

}  // namespace hicond_tidy
