// Explore the laminar hierarchy produced by recursive [phi, rho]
// decompositions (Section 1.1 / Remark 3): per-level sizes, reduction
// factors, decomposition quality, and the resulting multilevel solver's
// operator complexity.
//
//   ./hierarchy_explorer [family] [size]
//     family: grid2d | grid3d | oct | planar | regular   (default grid2d)
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "hicond/graph/generators.hpp"
#include "hicond/partition/hierarchy.hpp"
#include "hicond/precond/multilevel.hpp"
#include "hicond/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace hicond;
  const char* family = argc > 1 ? argv[1] : "grid2d";
  const vidx size = argc > 2 ? static_cast<vidx>(std::atoi(argv[2])) : 64;

  Graph g;
  if (std::strcmp(family, "grid2d") == 0) {
    g = gen::grid2d(size, size, gen::WeightSpec::uniform(1.0, 2.0), 3);
  } else if (std::strcmp(family, "grid3d") == 0) {
    g = gen::grid3d(size, size, size, gen::WeightSpec::uniform(1.0, 2.0), 3);
  } else if (std::strcmp(family, "oct") == 0) {
    g = gen::oct_volume(size, size, size, {.field_orders = 3.0}, 3);
  } else if (std::strcmp(family, "planar") == 0) {
    g = gen::random_planar_triangulation(
        size * size, gen::WeightSpec::uniform(1.0, 4.0), 3);
  } else if (std::strcmp(family, "regular") == 0) {
    g = gen::random_regular(size * size, 4, gen::WeightSpec::uniform(1.0, 2.0),
                            3);
  } else {
    std::fprintf(stderr, "unknown family '%s'\n", family);
    return 1;
  }
  std::printf("family=%s: n=%d, m=%lld, max degree %d\n", family,
              g.num_vertices(), static_cast<long long>(g.num_edges()),
              g.max_degree());

  Timer t;
  const LaminarHierarchy h = build_hierarchy(
      g, {.contraction = {.max_cluster_size = 4}, .coarsest_size = 64});
  std::printf("hierarchy built in %s\n\n", format_duration(t.seconds()).c_str());

  std::printf("%5s %10s %12s %8s %10s %10s %10s\n", "level", "n", "m", "rho",
              "phi_lo", "phi_hi", "gamma");
  for (int l = 0; l < h.num_levels(); ++l) {
    const auto& lv = h.levels[static_cast<std::size_t>(l)];
    // Quality evaluation is the expensive part; sample the closures exactly
    // up to the default size cap.
    const DecompositionStats stats =
        evaluate_decomposition(lv.graph, lv.decomposition);
    std::printf("%5d %10d %12lld %8.2f %10.4f %10.4f %10.4f\n", l,
                lv.graph.num_vertices(),
                static_cast<long long>(lv.graph.num_edges()),
                lv.decomposition.reduction_factor(), stats.min_phi_lower,
                stats.min_phi_upper, stats.min_gamma);
  }
  std::printf("%5s %10d %12lld\n", "coarse", h.coarsest.num_vertices(),
              static_cast<long long>(h.coarsest.num_edges()));

  const MultilevelSteinerSolver solver = MultilevelSteinerSolver::build(h);
  std::printf("\nmultilevel solver: %d levels, operator complexity %.3f\n",
              solver.num_levels(), solver.operator_complexity());
  return 0;
}
