#include "hicond/partition/hierarchy.hpp"

#include <gtest/gtest.h>

#include "hicond/graph/connectivity.hpp"
#include "hicond/graph/generators.hpp"

namespace hicond {
namespace {

TEST(Hierarchy, TerminatesAtCoarsestSize) {
  const Graph g = gen::grid2d(20, 20, gen::WeightSpec::uniform(1.0, 2.0), 3);
  const LaminarHierarchy h = build_hierarchy(g, {.coarsest_size = 50});
  EXPECT_LE(h.coarsest.num_vertices(), 50);
  EXPECT_GE(h.num_levels(), 1);
}

TEST(Hierarchy, LevelsShrinkGeometrically) {
  const Graph g = gen::grid2d(24, 24, gen::WeightSpec::uniform(1.0, 2.0), 5);
  const LaminarHierarchy h = build_hierarchy(g, {.coarsest_size = 20});
  for (std::size_t l = 0; l + 1 < h.levels.size(); ++l) {
    EXPECT_LE(h.levels[l + 1].graph.num_vertices(),
              h.levels[l].graph.num_vertices() / 2 + 1)
        << "level " << l;
  }
}

TEST(Hierarchy, QuotientChainIsConsistent) {
  const Graph g = gen::grid3d(6, 6, 6, gen::WeightSpec::uniform(1.0, 3.0), 7);
  const LaminarHierarchy h = build_hierarchy(g, {.coarsest_size = 10});
  for (std::size_t l = 0; l < h.levels.size(); ++l) {
    const auto& lv = h.levels[l];
    validate_decomposition(lv.graph, lv.decomposition);
    const vidx next_n = (l + 1 < h.levels.size())
                            ? h.levels[l + 1].graph.num_vertices()
                            : h.coarsest.num_vertices();
    EXPECT_EQ(lv.decomposition.num_clusters, next_n) << "level " << l;
  }
}

TEST(Hierarchy, ConnectivityPreservedByContraction) {
  const Graph g = gen::oct_volume(8, 8, 4, {}, 9);
  ASSERT_TRUE(is_connected(g));
  const LaminarHierarchy h = build_hierarchy(g, {.coarsest_size = 8});
  for (const auto& lv : h.levels) EXPECT_TRUE(is_connected(lv.graph));
  EXPECT_TRUE(is_connected(h.coarsest));
}

TEST(Hierarchy, TotalWeightIsNonIncreasing) {
  // Contraction removes intra-cluster weight, so total volume shrinks.
  const Graph g = gen::grid2d(16, 16, gen::WeightSpec::uniform(1.0, 2.0), 11);
  const LaminarHierarchy h = build_hierarchy(g, {.coarsest_size = 16});
  double prev = g.total_volume();
  for (std::size_t l = 1; l < h.levels.size(); ++l) {
    EXPECT_LE(h.levels[l].graph.total_volume(), prev + 1e-9);
    prev = h.levels[l].graph.total_volume();
  }
}

TEST(Hierarchy, FlattenComposesToCoarsest) {
  const Graph g = gen::grid2d(12, 12, gen::WeightSpec::uniform(1.0, 2.0), 13);
  const LaminarHierarchy h = build_hierarchy(g, {.coarsest_size = 12});
  const Decomposition flat = h.flatten();
  EXPECT_EQ(flat.assignment.size(), 144u);
  EXPECT_EQ(flat.num_clusters, h.coarsest.num_vertices());
  validate_decomposition(g, flat);
}

TEST(Hierarchy, SmallInputYieldsNoLevels) {
  const Graph g = gen::path(5);
  const LaminarHierarchy h = build_hierarchy(g, {.coarsest_size = 10});
  EXPECT_EQ(h.num_levels(), 0);
  EXPECT_EQ(h.coarsest.num_vertices(), 5);
}

TEST(Hierarchy, MaxLevelsRespected) {
  const Graph g = gen::grid2d(16, 16, gen::WeightSpec::uniform(1.0, 2.0), 15);
  HierarchyOptions opt;
  opt.coarsest_size = 1;
  opt.max_levels = 2;
  const LaminarHierarchy h = build_hierarchy(g, opt);
  EXPECT_LE(h.num_levels(), 2);
}

}  // namespace
}  // namespace hicond
