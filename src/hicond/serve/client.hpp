// In-process NDJSON client for the solver service.
//
// Tests and scripted drivers need to exercise the exact request/response
// path the transports use -- parse, admit, queue, process, serialize --
// without a process boundary. InProcessClient owns a ServerCore and turns
// one request line into one parsed response; submit_only() admits without
// draining so tests can fill the bounded queue and observe shed responses
// deterministically.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "hicond/obs/json.hpp"
#include "hicond/serve/server.hpp"

namespace hicond::serve {

class InProcessClient {
 public:
  explicit InProcessClient(const ServerOptions& options = {});

  /// Submit one request line and run the queue to completion; returns the
  /// response to *this* request (identified by submission order).
  [[nodiscard]] obs::JsonValue call(const std::string& line);

  /// Raw-string variant of call() (exact bytes the wire would carry).
  [[nodiscard]] std::string call_raw(const std::string& line);

  /// Admit without processing: returns the immediate response (parse error
  /// or queue_full shed) if any, nullopt when the request was queued.
  [[nodiscard]] std::optional<std::string> submit_only(
      const std::string& line);

  /// Process every queued request, returning the responses in order.
  [[nodiscard]] std::vector<std::string> drain();

  [[nodiscard]] ServerCore& core() noexcept { return core_; }

 private:
  ServerCore core_;
};

}  // namespace hicond::serve
