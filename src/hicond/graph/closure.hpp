// Closure graphs of vertex clusters (Section 2 of the paper).
//
// For a cluster C of G, the closure graph G^o_C is the graph induced by C
// plus, for every edge (u, v) with u in C and v outside, a freshly introduced
// degree-1 vertex attached to u with that edge's weight. The defining
// property of a [phi, rho] decomposition is that every cluster's closure has
// conductance at least phi.
#pragma once

#include <vector>

#include "hicond/graph/graph.hpp"

namespace hicond {

/// A closure graph together with its vertex bookkeeping.
struct ClosureGraph {
  Graph graph;                   ///< cluster vertices first, then boundary
  vidx num_cluster_vertices = 0; ///< closure vertex i < this <=> original
  std::vector<vidx> cluster;     ///< original ids of the cluster vertices
};

/// Build the closure graph of the cluster given as a vertex list.
[[nodiscard]] ClosureGraph closure_graph(const Graph& g,
                                         std::span<const vidx> cluster);

/// Build the closure graph of cluster `c` of an assignment (values are
/// cluster ids; -1 means unassigned and is treated as outside every cluster).
[[nodiscard]] ClosureGraph closure_graph_of_assignment(
    const Graph& g, std::span<const vidx> assignment, vidx c);

}  // namespace hicond
