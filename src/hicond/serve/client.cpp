#include "hicond/serve/client.hpp"

#include <utility>

#include "hicond/util/common.hpp"

namespace hicond::serve {

InProcessClient::InProcessClient(const ServerOptions& options)
    : core_(options) {}

std::string InProcessClient::call_raw(const std::string& line) {
  if (auto immediate = core_.submit(line)) {
    return *std::move(immediate);
  }
  // The queue held only this request (call() semantics), so the last
  // response drained is the one that answers it.
  std::string last;
  bool any = false;
  while (auto response = core_.step()) {
    last = *std::move(response);
    any = true;
  }
  HICOND_CHECK(any, "server queue drained without producing a response");
  return last;
}

obs::JsonValue InProcessClient::call(const std::string& line) {
  return obs::parse_json(call_raw(line));
}

std::optional<std::string> InProcessClient::submit_only(
    const std::string& line) {
  return core_.submit(line);
}

std::vector<std::string> InProcessClient::drain() {
  std::vector<std::string> responses;
  while (auto response = core_.step()) {
    responses.push_back(*std::move(response));
  }
  return responses;
}

}  // namespace hicond::serve
