// Independent, deliberately-slow re-computations backing the certificates.
//
// The oracle functions deliberately avoid the optimized evaluators the
// library itself uses (Gray-code incremental brute force, cached volumes in
// sweep form): every quantity is recomputed from first principles so a bug
// in the fast path cannot certify itself. Costs are documented per function
// and are acceptable because certification runs on small closures (brute
// force) or once per instance (Lanczos).
#pragma once

#include <cstdint>
#include <span>

#include "hicond/graph/graph.hpp"
#include "hicond/partition/decomposition.hpp"

namespace hicond::certify {

/// Sparsity cap(S, V-S) / min(vol S, vol V-S) of the cut flagged by `side`
/// (1 = inside S), recomputed from the arc list with no cached volumes.
/// Returns +infinity when either side has zero volume. O(n + m).
[[nodiscard]] double oracle_cut_sparsity(const Graph& g,
                                         std::span<const char> side);

/// Exact conductance by plain subset enumeration: every one of the
/// 2^(n-1) - 1 proper cuts is evaluated from scratch via oracle_cut_sparsity
/// (no incremental updates). O(2^n (n + m)); requires n <= 24. Graphs with
/// fewer than 2 vertices have no cuts and return +infinity.
[[nodiscard]] double oracle_conductance_bruteforce(const Graph& g);

/// Second-smallest eigenvalue of the normalized Laplacian
/// N = D^-1/2 L D^-1/2, estimated by a self-contained symmetric Lanczos
/// (full reorthogonalization) on the shifted, kernel-deflated operator
/// P (2I - N) P with P projecting out D^1/2 1; lambda_2 = 2 - lambda_max.
/// The Ritz estimate approaches lambda_2 from above, so the derived Cheeger
/// bound lambda_2 / 2 is certified only up to Krylov convergence -- the
/// certificate records the method precisely so consumers can tell this from
/// an exact brute-force bound. Requires n >= 2 and positive volumes.
[[nodiscard]] double oracle_lambda2_normalized(const Graph& g, int steps = 64,
                                               std::uint64_t seed = 7);

/// Two-sided conductance bound for a certificate: exact brute force (lower ==
/// upper) up to `exact_limit` vertices, Cheeger-via-Lanczos lower bound plus
/// Fiedler-sweep upper bound beyond.
struct OracleConductance {
  double lower = 0.0;
  double upper = 0.0;
  bool exact = false;
};

[[nodiscard]] OracleConductance oracle_conductance(const Graph& g,
                                                   vidx exact_limit = 14,
                                                   int lanczos_steps = 64,
                                                   std::uint64_t seed = 7);

/// Steiner support number sigma(S_P, A) = lambda_max(B_S, A) of Theorem 3.5
/// (B_S the Schur complement of the Steiner graph onto the original
/// vertices): exact dense pencil solve up to `dense_limit` vertices, beyond
/// that Lanczos on the generalized eigenproblem (A, B_S) using the Steiner
/// preconditioner application as the exact B_S pseudo-inverse, with
/// sigma = 1 / lambda_min(A, B_S). Requires a connected graph.
struct OracleSigma {
  double sigma = 0.0;
  bool exact = false;   ///< dense pencil (true) vs Lanczos estimate (false)
  int iterations = 0;   ///< Krylov steps taken (0 for dense)
};

[[nodiscard]] OracleSigma oracle_steiner_sigma(const Graph& a,
                                               const Decomposition& p,
                                               vidx dense_limit = 220,
                                               int lanczos_steps = 64,
                                               std::uint64_t seed = 7);

}  // namespace hicond::certify
