#include "hicond/la/lanczos.hpp"

#include <gtest/gtest.h>

#include "hicond/graph/generators.hpp"
#include "hicond/la/dense.hpp"
#include "hicond/la/dense_eigen.hpp"
#include "hicond/la/sparse_cholesky.hpp"

namespace hicond {
namespace {

LinearOperator laplacian_op(const Graph& g) {
  return [&g](std::span<const double> x, std::span<double> y) {
    g.laplacian_apply(x, y);
  };
}

TEST(LanczosLambdaMax, MatchesDenseOnLaplacian) {
  const Graph g = gen::grid2d(6, 6, gen::WeightSpec::uniform(1.0, 3.0), 5);
  const double est = lanczos_lambda_max(laplacian_op(g), 36, 35);
  const auto eig = symmetric_eigen(dense_laplacian(g));
  EXPECT_NEAR(est, eig.values.back(), eig.values.back() * 1e-6);
}

TEST(LanczosLambdaMax, PathGraph) {
  const Graph g = gen::path(30);
  const double est = lanczos_lambda_max(laplacian_op(g), 30, 29);
  const auto eig = symmetric_eigen(dense_laplacian(g));
  EXPECT_NEAR(est, eig.values.back(), 1e-6);
}

TEST(PencilExtremes, SelfPencilIsOne) {
  const Graph g = gen::grid2d(5, 5, gen::WeightSpec::uniform(1.0, 2.0), 2);
  const LaplacianDirectSolver solver(g);
  auto solve = [&solver](std::span<const double> r, std::span<double> z) {
    solver.apply(r, z);
  };
  const auto ext = lanczos_pencil_extremes(laplacian_op(g), solve, 25, 20);
  EXPECT_NEAR(ext.lambda_max, 1.0, 1e-8);
  EXPECT_NEAR(ext.lambda_min, 1.0, 1e-8);
}

TEST(PencilExtremes, ScaledPencil) {
  const Graph ga = gen::grid2d(5, 4, gen::WeightSpec::uniform(1.0, 2.0), 3);
  // B = A / 3 -> lambda(A, B) = 3 everywhere.
  std::vector<WeightedEdge> scaled;
  for (const auto& e : ga.edge_list()) {
    scaled.push_back({e.u, e.v, e.weight / 3.0});
  }
  const Graph gb(20, scaled);
  const LaplacianDirectSolver solver(gb);
  auto solve = [&solver](std::span<const double> r, std::span<double> z) {
    solver.apply(r, z);
  };
  const auto ext = lanczos_pencil_extremes(laplacian_op(ga), solve, 20, 19);
  EXPECT_NEAR(ext.lambda_max, 3.0, 1e-7);
  EXPECT_NEAR(ext.lambda_min, 3.0, 1e-7);
}

TEST(PencilExtremes, MatchesDenseGeneralizedEigen) {
  const Graph a =
      gen::random_planar_triangulation(24, gen::WeightSpec::uniform(1, 4), 9);
  // B = maximum spanning tree skeleton: every A-edge supported by B paths.
  std::vector<WeightedEdge> tree_edges;
  {
    // Greedy: keep the first spanning set in edge order (BFS tree).
    std::vector<char> seen(24, 0);
    seen[0] = 1;
    bool progress = true;
    while (progress) {
      progress = false;
      for (const auto& e : a.edge_list()) {
        if (seen[static_cast<std::size_t>(e.u)] !=
            seen[static_cast<std::size_t>(e.v)]) {
          tree_edges.push_back(e);
          seen[static_cast<std::size_t>(e.u)] = 1;
          seen[static_cast<std::size_t>(e.v)] = 1;
          progress = true;
        }
      }
    }
  }
  const Graph b(24, tree_edges);
  const LaplacianDirectSolver solver(b);
  auto solve = [&solver](std::span<const double> r, std::span<double> z) {
    solver.apply(r, z);
  };
  const auto ext = lanczos_pencil_extremes(laplacian_op(a), solve, 24, 23);
  const auto eig =
      generalized_eigen_laplacian(dense_laplacian(a), dense_laplacian(b));
  EXPECT_NEAR(ext.lambda_max, eig.values.back(),
              eig.values.back() * 1e-5);
  EXPECT_NEAR(ext.lambda_min, eig.values.front(), 1e-5);
}

double dense_sigma(const Graph& a, const Graph& b) {
  return lambda_max_laplacian_pencil(dense_laplacian(a), dense_laplacian(b));
}

TEST(ConditionNumber, SubgraphPencilAtLeastOneSided) {
  // For a subgraph B of A: lambda_min(A,B) >= 1, so kappa >= lambda_max.
  const Graph a = gen::grid2d(5, 5, gen::WeightSpec::uniform(1.0, 2.0), 8);
  std::vector<WeightedEdge> tree_edges;
  std::vector<char> seen(25, 0);
  seen[0] = 1;
  bool progress = true;
  while (progress) {
    progress = false;
    for (const auto& e : a.edge_list()) {
      if (seen[static_cast<std::size_t>(e.u)] !=
          seen[static_cast<std::size_t>(e.v)]) {
        tree_edges.push_back(e);
        seen[static_cast<std::size_t>(e.u)] = 1;
        seen[static_cast<std::size_t>(e.v)] = 1;
        progress = true;
      }
    }
  }
  const Graph b(25, tree_edges);
  const LaplacianDirectSolver solver(b);
  auto solve = [&solver](std::span<const double> r, std::span<double> z) {
    solver.apply(r, z);
  };
  const double kappa =
      condition_number_estimate(laplacian_op(a), solve, 25, 24);
  const double sigma = dense_sigma(a, b);
  EXPECT_GE(kappa, sigma * (1.0 - 1e-6));
}

}  // namespace
}  // namespace hicond
