// Tests for obs/metrics (registry semantics + JSON export) and obs/report
// (LaplacianSolver round-trip: the report must be consistent with the
// hierarchy it describes).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "hicond/graph/generators.hpp"
#include "hicond/la/vector_ops.hpp"
#include "hicond/obs/json.hpp"
#include "hicond/obs/metrics.hpp"
#include "hicond/obs/report.hpp"
#include "hicond/solver.hpp"
#include "hicond/util/rng.hpp"

namespace hicond {
namespace {

TEST(Metrics, CountersAccumulate) {
  obs::MetricsRegistry registry;
  EXPECT_EQ(registry.counter("m.c"), 0);
  registry.counter_add("m.c");
  registry.counter_add("m.c", 4);
  EXPECT_EQ(registry.counter("m.c"), 5);
}

TEST(Metrics, GaugesLastWriteWins) {
  obs::MetricsRegistry registry;
  registry.gauge_set("m.g", 1.5);
  registry.gauge_set("m.g", -2.5);
  EXPECT_DOUBLE_EQ(registry.gauge("m.g"), -2.5);
  EXPECT_DOUBLE_EQ(registry.gauge("m.unset"), 0.0);
}

TEST(Metrics, HistogramsRecordSamples) {
  obs::MetricsRegistry registry;
  for (int i = 1; i <= 100; ++i) {
    registry.histogram_record("m.h", static_cast<double>(i));
  }
  const Histogram h = registry.histogram("m.h");
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.stats().mean(), 50.5, 1e-12);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 15.0);  // log buckets: coarse mid-range
  EXPECT_EQ(registry.histogram("m.never").count(), 0u);
}

TEST(Metrics, ClearEmptiesEverything) {
  obs::MetricsRegistry registry;
  registry.counter_add("m.c");
  registry.gauge_set("m.g", 1.0);
  registry.histogram_record("m.h", 1.0);
  registry.clear();
  EXPECT_EQ(registry.counter("m.c"), 0);
  EXPECT_DOUBLE_EQ(registry.gauge("m.g"), 0.0);
  EXPECT_EQ(registry.histogram("m.h").count(), 0u);
}

TEST(Metrics, ToJsonIsWellFormed) {
  obs::MetricsRegistry registry;
  registry.counter_add("m.count", 7);
  registry.gauge_set("m.level", 3.0);
  registry.histogram_record("m.time", 0.5);
  registry.histogram_record("m.time", 2.0);
  const obs::JsonValue doc = obs::parse_json(registry.to_json());
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.at("counters").at("m.count").number, 7.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("m.level").number, 3.0);
  const obs::JsonValue& h = doc.at("histograms").at("m.time");
  EXPECT_DOUBLE_EQ(h.at("count").number, 2.0);
  EXPECT_DOUBLE_EQ(h.at("min").number, 0.5);
  EXPECT_DOUBLE_EQ(h.at("max").number, 2.0);
  ASSERT_TRUE(h.at("buckets").is_array());
  double bucket_total = 0.0;
  for (const obs::JsonValue& b : h.at("buckets").array) {
    EXPECT_GT(b.at("count").number, 0.0);  // zero buckets are omitted
    EXPECT_LT(b.at("lo").number, b.at("hi").number);
    bucket_total += b.at("count").number;
  }
  EXPECT_DOUBLE_EQ(bucket_total, 2.0);
}

TEST(Metrics, GlobalRegistryRecordsLibraryActivity) {
  auto& global = obs::MetricsRegistry::global();
  global.clear();
  const Graph g = gen::grid2d(24, 24, gen::WeightSpec::uniform(1.0, 2.0), 3);
  const LaplacianSolver solver(g, {.hierarchy = {.coarsest_size = 64}});
  EXPECT_GE(global.counter("hierarchy.builds"), 1);
  EXPECT_GE(global.counter("multilevel.builds"), 1);
  global.clear();
}

// ---------------------------------------------------------------------------
// SolverReport round-trip
// ---------------------------------------------------------------------------

class SolverReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = gen::grid2d(32, 32, gen::WeightSpec::uniform(1.0, 2.0), 11);
    solver_ = std::make_unique<LaplacianSolver>(
        graph_, LaplacianSolverOptions{.hierarchy = {.coarsest_size = 64}});
    const auto n = static_cast<std::size_t>(graph_.num_vertices());
    b_.assign(n, 0.0);
    Rng rng(17);
    for (auto& v : b_) v = rng.uniform(-1.0, 1.0);
    la::remove_mean(b_);
    x_.assign(n, 0.0);
    stats_ = solver_->solve(b_, x_);
  }

  Graph graph_;
  std::unique_ptr<LaplacianSolver> solver_;
  std::vector<double> b_;
  std::vector<double> x_;
  SolveStats stats_;
};

TEST_F(SolverReportTest, HierarchyShapeIsConsistent) {
  const obs::SolverReport report = solver_->report();
  ASSERT_FALSE(report.levels.empty());
  EXPECT_EQ(report.vertices, graph_.num_vertices());
  EXPECT_EQ(report.edges, graph_.num_edges());
  EXPECT_EQ(static_cast<int>(report.levels.size()), report.num_levels);
  // Level l's clusters are level l+1's vertices; the last level contracts
  // into the coarsest graph.
  for (std::size_t l = 0; l + 1 < report.levels.size(); ++l) {
    EXPECT_EQ(report.levels[l].clusters, report.levels[l + 1].vertices);
  }
  EXPECT_EQ(report.levels.back().clusters, report.coarsest_vertices);
  EXPECT_EQ(report.levels.front().vertices, graph_.num_vertices());
  EXPECT_GE(report.operator_complexity, 1.0);
}

TEST_F(SolverReportTest, QualityDistributionIsSane) {
  const obs::SolverReport report = solver_->report();
  for (const obs::LevelReport& lv : report.levels) {
    EXPECT_GT(lv.phi_min, 0.0);
    EXPECT_LE(lv.phi_min, lv.phi_p50);
    EXPECT_LE(lv.phi_p50, lv.phi_p90);
    EXPECT_LE(lv.phi_p90, 1.0);
    EXPECT_GE(lv.cut_fraction, 0.0);
    EXPECT_LE(lv.cut_fraction, 1.0);
    EXPECT_GT(lv.reduction, 1.0);
  }
}

TEST_F(SolverReportTest, TimingAttributionIsConsistent) {
  const obs::SolverReport report = solver_->report();
  EXPECT_GT(report.setup_seconds, 0.0);
  EXPECT_EQ(report.solves, 1);
  EXPECT_GT(report.solve_seconds, 0.0);
  // One V-cycle per PCG iteration plus possibly the iteration-0 precondition
  // application; every level is visited once per cycle.
  ASSERT_FALSE(report.levels.empty());
  const std::int64_t cycles = report.levels.front().cycle_calls;
  EXPECT_GE(cycles, static_cast<std::int64_t>(stats_.iterations));
  for (const obs::LevelReport& lv : report.levels) {
    EXPECT_EQ(lv.cycle_calls, cycles);
    EXPECT_GE(lv.cycle_seconds, lv.cycle_seconds_exclusive);
  }
  EXPECT_EQ(report.coarsest_calls, cycles);
  // Exclusive times plus the coarsest solve account for the inclusive root.
  double exclusive_total = report.coarsest_seconds;
  for (const obs::LevelReport& lv : report.levels) {
    exclusive_total += lv.cycle_seconds_exclusive;
  }
  EXPECT_LE(exclusive_total,
            report.levels.front().cycle_seconds * 1.5 + 1e-6);
}

TEST_F(SolverReportTest, ResidualTraceMatchesSolveAndConverges) {
  const obs::SolverReport report = solver_->report();
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.iterations, stats_.iterations);
  ASSERT_EQ(report.residual_history.size(),
            static_cast<std::size_t>(stats_.iterations) + 1);
  // PCG residuals need not decrease strictly step-to-step, but convergence
  // means the final residual is far below the initial one.
  EXPECT_LT(report.residual_history.back(),
            report.residual_history.front() * 1e-6);
  // ... and the trace never blows up: no entry exceeds the initial residual
  // by more than a small factor.
  for (const double r : report.residual_history) {
    EXPECT_LE(r, report.residual_history.front() * 10.0);
  }
}

TEST_F(SolverReportTest, JsonRoundTrip) {
  const obs::SolverReport report = solver_->report();
  const obs::JsonValue doc = obs::parse_json(report.to_json());
  EXPECT_DOUBLE_EQ(doc.at("vertices").number,
                   static_cast<double>(graph_.num_vertices()));
  EXPECT_EQ(doc.at("levels").array.size(), report.levels.size());
  const obs::JsonValue& solve = doc.at("solve");
  EXPECT_DOUBLE_EQ(solve.at("iterations").number,
                   static_cast<double>(report.iterations));
  EXPECT_TRUE(solve.at("converged").boolean);
  EXPECT_EQ(solve.at("residual_history").array.size(),
            report.residual_history.size());
  // Text rendering mentions the shape too.
  const std::string text = report.to_text();
  EXPECT_NE(text.find("SolverReport"), std::string::npos);
  EXPECT_NE(text.find("coarse"), std::string::npos);
}

TEST_F(SolverReportTest, SkippingQualityLeavesPhiUnset) {
  const obs::SolverReport report =
      solver_->report(obs::SolverReportOptions{.quality = false});
  for (const obs::LevelReport& lv : report.levels) {
    EXPECT_EQ(lv.phi_min, 0.0);
    EXPECT_EQ(lv.phi_p50, 0.0);
  }
}

}  // namespace
}  // namespace hicond
