#include "hicond/graph/connectivity.hpp"

#include <deque>

#include "hicond/util/common.hpp"

namespace hicond {

std::vector<vidx> connected_components(const Graph& g) {
  HICOND_RUN_VALIDATION(expensive, g.validate());
  const vidx n = g.num_vertices();
  std::vector<vidx> comp(static_cast<std::size_t>(n), -1);
  std::vector<vidx> stack;
  vidx next_id = 0;
  for (vidx s = 0; s < n; ++s) {
    if (comp[static_cast<std::size_t>(s)] != -1) continue;
    comp[static_cast<std::size_t>(s)] = next_id;
    stack.push_back(s);
    while (!stack.empty()) {
      const vidx v = stack.back();
      stack.pop_back();
      for (vidx u : g.neighbors(v)) {
        if (comp[static_cast<std::size_t>(u)] == -1) {
          comp[static_cast<std::size_t>(u)] = next_id;
          stack.push_back(u);
        }
      }
    }
    ++next_id;
  }
  return comp;
}

vidx num_components(const Graph& g) {
  const auto comp = connected_components(g);
  vidx k = 0;
  for (vidx c : comp) k = std::max(k, static_cast<vidx>(c + 1));
  return k;
}

bool is_connected(const Graph& g) {
  return g.num_vertices() == 0 || num_components(g) == 1;
}

bool is_forest(const Graph& g) {
  return g.num_edges() ==
         static_cast<eidx>(g.num_vertices()) - num_components(g);
}

bool is_tree(const Graph& g) { return is_connected(g) && is_forest(g); }

std::vector<vidx> bfs_distances(const Graph& g, vidx source) {
  const vidx n = g.num_vertices();
  HICOND_CHECK(source >= 0 && source < n, "BFS source out of range");
  std::vector<vidx> dist(static_cast<std::size_t>(n), -1);
  std::deque<vidx> queue{source};
  dist[static_cast<std::size_t>(source)] = 0;
  while (!queue.empty()) {
    const vidx v = queue.front();
    queue.pop_front();
    for (vidx u : g.neighbors(v)) {
      if (dist[static_cast<std::size_t>(u)] == -1) {
        dist[static_cast<std::size_t>(u)] =
            dist[static_cast<std::size_t>(v)] + 1;
        queue.push_back(u);
      }
    }
  }
  return dist;
}

}  // namespace hicond
