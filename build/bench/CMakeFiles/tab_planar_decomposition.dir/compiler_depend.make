# Empty compiler generated dependencies file for tab_planar_decomposition.
# This may be replaced when dependencies are built.
