#include "hicond/tree/euler.hpp"

#include "hicond/util/parallel.hpp"

namespace hicond {

std::vector<vidx> list_ranking(std::span<const vidx> next) {
  const std::size_t n = next.size();
  const bool bad = parallel_any(n, [&](std::size_t i) {
    const vidx nx = next[i];
    return !(nx == -1 || (nx >= 0 && static_cast<std::size_t>(nx) < n));
  });
  HICOND_CHECK(!bad, "bad successor index");
  std::vector<vidx> rank(n);
  std::vector<vidx> jump(n);
  parallel_for(n, [&](std::size_t i) {
    rank[i] = next[i] == -1 ? 0 : 1;
    jump[i] = next[i];
  });
  // Pointer jumping: O(log n) rounds; each round reads the previous
  // round's arrays only, so the per-round sweep is safely parallel.
  std::vector<vidx> rank_next(n);
  std::vector<vidx> jump_next(n);
  bool active = n > 0;
  while (active) {
    parallel_for(n, [&](std::size_t i) {
      if (jump[i] == -1) {
        rank_next[i] = rank[i];
        jump_next[i] = -1;
      } else {
        const auto j = static_cast<std::size_t>(jump[i]);
        rank_next[i] = rank[i] + rank[j];
        jump_next[i] = jump[j];
      }
    });
    rank.swap(rank_next);
    jump.swap(jump_next);
    active = parallel_any(n, [&](std::size_t i) { return jump[i] != -1; });
  }
  return rank;
}

EulerTour euler_tour(const RootedForest& forest) {
  const vidx n = forest.num_vertices();
  EulerTour tour;
  tour.edge_of_child.assign(static_cast<std::size_t>(n), -1);
  // Edge ids come from a cheap serial prefix count over non-roots; the
  // per-arc successor assembly below is the heavy part and runs parallel.
  vidx num_edges = 0;
  for (vidx v = 0; v < n; ++v) {
    if (!forest.is_root(v)) {
      tour.edge_of_child[static_cast<std::size_t>(v)] = num_edges++;
    }
  }
  tour.child_of_edge.assign(static_cast<std::size_t>(num_edges), -1);
  parallel_for(static_cast<std::size_t>(n), [&](std::size_t v) {
    const vidx e = tour.edge_of_child[v];
    if (e != -1) {
      tour.child_of_edge[static_cast<std::size_t>(e)] = static_cast<vidx>(v);
    }
  });
  tour.next.assign(static_cast<std::size_t>(num_edges) * 2, -1);
  auto down = [&tour](vidx child) {
    return 2 * tour.edge_of_child[static_cast<std::size_t>(child)];
  };
  auto up = [&tour](vidx child) {
    return 2 * tour.edge_of_child[static_cast<std::size_t>(child)] + 1;
  };
  // Successor rules (see header): the tour enters a child, walks its
  // children left to right, and leaves. Every slot has a unique writer --
  // next[down(v)] is written by v itself, next[up(c)] by c's parent -- so
  // the sweep is owner-computes parallel.
  parallel_for(static_cast<std::size_t>(n), [&](std::size_t i) {
    const auto v = static_cast<vidx>(i);
    const auto children = forest.children(v);
    if (!forest.is_root(v)) {
      // Down-arc into v continues to v's first child or bounces back up.
      tour.next[static_cast<std::size_t>(down(v))] =
          children.empty() ? up(v) : down(children.front());
    }
    // After returning from child c, continue with the next sibling or leave.
    // For roots the tour of the component starts at down(children.front())
    // and ends at up(children.back()).
    for (std::size_t k = 0; k < children.size(); ++k) {
      const vidx c = children[k];
      if (k + 1 < children.size()) {
        tour.next[static_cast<std::size_t>(up(c))] = down(children[k + 1]);
      } else if (!forest.is_root(v)) {
        tour.next[static_cast<std::size_t>(up(c))] = up(v);
      }  // else: end of the component tour (-1).
    }
  });
  tour.rank = list_ranking(tour.next);
  return tour;
}

std::vector<vidx> subtree_sizes_from_tour(const RootedForest& forest,
                                          const EulerTour& tour) {
  const vidx n = forest.num_vertices();
  std::vector<vidx> size(static_cast<std::size_t>(n), 0);
  parallel_for(static_cast<std::size_t>(n), [&](std::size_t v) {
    const vidx e = tour.edge_of_child[v];
    if (e == -1) {
      // Root: subtree is the whole component; recovered from the sequential
      // structure (the tour ranks only index proper subtrees).
      size[v] = forest.subtree_size(static_cast<vidx>(v));
    } else {
      const vidx rd = tour.rank[static_cast<std::size_t>(2 * e)];
      const vidx ru = tour.rank[static_cast<std::size_t>(2 * e + 1)];
      size[v] = (rd - ru + 1) / 2;
    }
  });
  return size;
}

}  // namespace hicond
