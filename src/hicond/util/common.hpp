// Core type aliases and error-handling helpers shared by every hicond module.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace hicond {

/// Vertex / cluster index type. 32-bit indices keep CSR structures compact;
/// graphs up to ~2 billion vertices are out of scope for this library.
using vidx = std::int32_t;

/// Edge / nonzero offset type. 64-bit because the number of directed arcs can
/// exceed 2^31 well before the vertex count does.
using eidx = std::int64_t;

/// Thrown on malformed user input (negative weights, ragged CSR, ...).
class invalid_argument_error : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when a numeric routine cannot proceed (singular pivot, ...).
class numeric_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  throw invalid_argument_error(std::string("hicond check failed: ") + expr +
                               " at " + file + ":" + std::to_string(line) +
                               (msg.empty() ? "" : (": " + msg)));
}
}  // namespace detail

}  // namespace hicond

/// Always-on precondition check for public API boundaries.
#define HICOND_CHECK(expr, msg)                                          \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::hicond::detail::throw_check_failure(#expr, __FILE__, __LINE__,   \
                                            (msg));                      \
    }                                                                    \
  } while (false)

/// Internal invariant check; compiled out in release-with-NDEBUG builds is
/// deliberately NOT done -- the cost is negligible next to the algorithms and
/// the checks double as executable documentation.
#define HICOND_ASSERT(expr) HICOND_CHECK(expr, "internal invariant")
