# Empty compiler generated dependencies file for spectral_clusters.
# This may be replaced when dependencies are built.
