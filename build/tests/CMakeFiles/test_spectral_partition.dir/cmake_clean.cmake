file(REMOVE_RECURSE
  "CMakeFiles/test_spectral_partition.dir/test_spectral_partition.cpp.o"
  "CMakeFiles/test_spectral_partition.dir/test_spectral_partition.cpp.o.d"
  "test_spectral_partition"
  "test_spectral_partition.pdb"
  "test_spectral_partition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spectral_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
