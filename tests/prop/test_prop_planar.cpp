// Properties of the Theorem 2.2/2.3 planar pipeline on random maximal
// planar triangulations: the cut stage must leave a forest, the resulting
// decomposition must be structurally sound, and the Steiner support bound
// must certify.

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "hicond/certify/certify.hpp"
#include "hicond/graph/connectivity.hpp"
#include "hicond/graph/generators.hpp"
#include "hicond/partition/planar.hpp"
#include "prop.hpp"

namespace hicond {
namespace {

Graph planar_instance(Rng& rng, vidx n) {
  const std::uint64_t s = rng.next_u64();
  const gen::WeightSpec w = (rng.uniform_index(2) == 0)
                                ? gen::WeightSpec::unit()
                                : gen::WeightSpec::uniform(0.5, 3.0);
  return gen::random_planar_triangulation(std::max<vidx>(n, 3), w, s);
}

PlanarDecompOptions fast_options() {
  PlanarDecompOptions o;
  o.measure_k = false;  // skip the Lanczos k estimate; not under test here
  return o;
}

TEST(prop_planar, PipelineLeavesForestAndValidDecomposition) {
  const auto property = [](const Graph& g) {
    if (g.num_vertices() < 2 || !is_connected(g)) return;  // vacuous mutant
    const PlanarDecompResult pd = planar_decomposition(g, fast_options());
    pd.decomposition.validate(g);
    if (!is_forest(pd.forest)) {
      throw std::runtime_error("cut stage left a cycle in the forest");
    }
    const certify::Certificate cert =
        certify::certify_decomposition(g, pd.decomposition, 0.0, 1.0);
    if (!cert.pass) throw std::runtime_error(cert.to_text());
  };
  prop::PropOptions o;
  o.cases = 25;
  o.min_size = 3;
  o.max_size = 70;
  o.seed = 401;
  const prop::PropResult r = prop::check_property(planar_instance, property, o);
  EXPECT_TRUE(r.ok) << r.describe();
}

TEST(prop_planar, SteinerSupportBoundHolds) {
  const auto property = [](const Graph& g) {
    if (g.num_vertices() < 2 || !is_connected(g)) return;
    const PlanarDecompResult pd = planar_decomposition(g, fast_options());
    const certify::Certificate cert =
        certify::certify_steiner_support(g, pd.decomposition);
    if (!cert.pass) throw std::runtime_error(cert.to_text());
  };
  prop::PropOptions o;
  o.cases = 15;
  o.min_size = 4;
  o.max_size = 60;
  o.seed = 402;
  const prop::PropResult r = prop::check_property(planar_instance, property, o);
  EXPECT_TRUE(r.ok) << r.describe();
}

}  // namespace
}  // namespace hicond
