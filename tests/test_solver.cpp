#include "hicond/solver.hpp"

#include <gtest/gtest.h>

#include "hicond/graph/generators.hpp"
#include "hicond/la/vector_ops.hpp"
#include "hicond/util/rng.hpp"

namespace hicond {
namespace {

std::vector<double> mean_free_rhs(vidx n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  la::remove_mean(b);
  return b;
}

TEST(LaplacianSolver, SolvesGridSystem) {
  const Graph g = gen::grid2d(20, 20, gen::WeightSpec::uniform(1.0, 3.0), 3);
  const LaplacianSolver solver(g);
  const auto b = mean_free_rhs(400, 1);
  const auto x = solver.solve(b);
  std::vector<double> check(400);
  g.laplacian_apply(x, check);
  EXPECT_LT(la::max_abs_diff(check, b), 1e-5);
  // Mean-free solution.
  double sum = 0.0;
  for (double v : x) sum += v;
  EXPECT_NEAR(sum, 0.0, 1e-8);
}

TEST(LaplacianSolver, SolvesOctVolume) {
  const Graph g = gen::oct_volume(9, 9, 9, {.field_orders = 3.0}, 5);
  const LaplacianSolver solver(g);
  const auto b = mean_free_rhs(g.num_vertices(), 2);
  std::vector<double> x(b.size(), 0.0);
  const SolveStats stats = solver.solve(b, x);
  EXPECT_TRUE(stats.converged);
  EXPECT_LT(stats.iterations, 80);
  EXPECT_GE(solver.num_levels(), 1);
  EXPECT_LT(solver.operator_complexity(), 2.0);
}

TEST(LaplacianSolver, InconsistentRhsIsProjected) {
  // b with nonzero mean: the solver solves the projected system.
  const Graph g = gen::grid2d(8, 8, gen::WeightSpec::uniform(1.0, 2.0), 7);
  std::vector<double> b(64, 0.0);
  b[0] = 1.0;  // sum = 1, inconsistent
  const LaplacianSolver solver(g);
  const auto x = solver.solve(b);
  std::vector<double> check(64);
  g.laplacian_apply(x, check);
  std::vector<double> b_proj = b;
  la::remove_mean(b_proj);
  EXPECT_LT(la::max_abs_diff(check, b_proj), 1e-6);
}

TEST(LaplacianSolver, WarmStartUsesInitialGuess) {
  const Graph g = gen::grid2d(12, 12, gen::WeightSpec::uniform(1.0, 2.0), 9);
  const LaplacianSolver solver(g);
  const auto b = mean_free_rhs(144, 3);
  std::vector<double> x(144, 0.0);
  const SolveStats cold = solver.solve(b, x);
  EXPECT_TRUE(cold.converged);
  // Re-solve from the converged x: should converge immediately.
  const SolveStats warm = solver.solve(b, x);
  EXPECT_TRUE(warm.converged);
  EXPECT_LE(warm.iterations, 1);
}

TEST(LaplacianSolver, RejectsDisconnected) {
  std::vector<WeightedEdge> edges{{0, 1, 1.0}, {2, 3, 1.0}};
  EXPECT_THROW(LaplacianSolver(Graph(4, edges)), invalid_argument_error);
}

TEST(LaplacianSolver, ThrowsWhenIterationBudgetTooSmall) {
  const Graph g = gen::grid2d(20, 20, gen::WeightSpec::uniform(1.0, 2.0), 11);
  LaplacianSolverOptions opt;
  opt.hierarchy.coarsest_size = 16;  // force a true multilevel cycle
  opt.max_iterations = 1;
  opt.rel_tolerance = 1e-14;
  const LaplacianSolver solver(g, opt);
  const auto b = mean_free_rhs(400, 5);
  EXPECT_THROW((void)solver.solve(b), numeric_error);
}

TEST(LaplacianSolver, TinyGraphs) {
  // Two vertices, one edge.
  std::vector<WeightedEdge> edges{{0, 1, 2.0}};
  const LaplacianSolver solver(Graph(2, edges));
  const std::vector<double> b{1.0, -1.0};
  const auto x = solver.solve(b);
  EXPECT_NEAR(x[0] - x[1], 0.5, 1e-10);
}

}  // namespace
}  // namespace hicond
