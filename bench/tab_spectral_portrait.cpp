// TAB-T41 -- Theorem 4.1: the spectral portrait of (phi, gamma)
// decompositions.
//
// For each eigenvector x_i of the normalized Laplacian we print lambda_i,
// the measured squared alignment with the cluster space Range(D^{1/2} R),
// and the theorem's lower bound 1 - 3 lambda_i (1 + 2/(gamma phi^2)). The
// bound must hold row by row; for planted clusterings the low eigenvectors
// are nearly fully aligned while the bound is only informative for
// lambda_i << 1 (exactly the regime the theorem targets).
#include <cstdio>

#include "hicond/graph/builder.hpp"
#include "hicond/graph/generators.hpp"
#include "hicond/partition/fixed_degree.hpp"
#include "hicond/spectral/portrait.hpp"
#include "hicond/spectral/random_walk.hpp"

namespace {

using namespace hicond;

Graph planted(vidx k, vidx size, double bridge, Decomposition* p) {
  GraphBuilder b(k * size);
  for (vidx c = 0; c < k; ++c) {
    for (vidx i = 0; i < size; ++i) {
      for (vidx j = i + 1; j < size; ++j) {
        b.add_edge(c * size + i, c * size + j, 1.0);
      }
    }
    b.add_edge(c * size, ((c + 1) % k) * size, bridge);
  }
  p->num_clusters = k;
  p->assignment.resize(static_cast<std::size_t>(k * size));
  for (vidx v = 0; v < k * size; ++v) {
    p->assignment[static_cast<std::size_t>(v)] = v / size;
  }
  return b.build();
}

void print_portrait(const char* name, const Graph& g, const Decomposition& p,
                    std::size_t rows_to_show) {
  const SpectralPortrait portrait = spectral_portrait(g, p);
  std::printf("#\n# %s: phi=%.4f gamma=%.4f support factor=%.2f\n", name,
              portrait.phi, portrait.gamma, portrait.support_factor);
  std::printf("%4s %12s %14s %14s %9s\n", "i", "lambda_i", "alignment^2",
              "bound", "holds");
  int violations = 0;
  for (std::size_t i = 0; i < portrait.rows.size(); ++i) {
    const auto& row = portrait.rows[i];
    const bool holds = row.alignment_sq >= row.bound - 1e-9;
    if (!holds) ++violations;
    if (i < rows_to_show) {
      std::printf("%4zu %12.6f %14.6f %14.6f %9s\n", i, row.lambda,
                  row.alignment_sq, row.bound, holds ? "yes" : "NO");
    }
  }
  std::printf("# ... %zu eigenvectors total, %d bound violations\n",
              portrait.rows.size(), violations);
}

}  // namespace

int main() {
  std::printf("# TAB-T41: Theorem 4.1 spectral portraits\n");
  {
    Decomposition p;
    const Graph g = planted(5, 8, 0.01, &p);
    print_portrait("planted 5 cliques x 8, bridge 0.01", g, p, 10);
    // Random-walk motivation: trapping probability from a cluster vertex.
    std::printf("# random-walk trapped mass from vertex 1 after t steps:");
    for (int t : {1, 5, 20, 100}) {
      std::printf(" t=%d: %.3f", t, trapped_mass(g, p, 1, t));
    }
    std::printf("\n");
  }
  {
    Decomposition p;
    const Graph g = planted(4, 10, 0.1, &p);
    print_portrait("planted 4 cliques x 10, bridge 0.1", g, p, 8);
  }
  {
    // A non-planted case: Section 3.1 decomposition of a weighted grid.
    const Graph g = gen::grid2d(7, 7, gen::WeightSpec::uniform(1.0, 3.0), 5);
    const auto fd = fixed_degree_decomposition(g, {.max_cluster_size = 4});
    print_portrait("grid2d 7x7 with Section 3.1 decomposition", g,
                   fd.decomposition, 8);
  }
  std::printf("# paper: low eigenvectors of the normalized Laplacian are "
              "close to the span of D^{1/2}-scaled cluster indicators\n");
  return 0;
}
