# Empty compiler generated dependencies file for tab_construction_time.
# This may be replaced when dependencies are built.
