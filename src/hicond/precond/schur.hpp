// Schur complements of graph Laplacians (Definition 5.5 and the Steiner
// Schur complement B = D - V (Q + D_Q)^{-1} V' used by Theorems 3.5/4.1).
#pragma once

#include "hicond/graph/graph.hpp"
#include "hicond/la/dense.hpp"
#include "hicond/partition/decomposition.hpp"

namespace hicond {

/// Closed-form Schur complement of a weighted star with respect to its root
/// (Definition 5.5): eliminating the root of a star with edge weights d_i
/// yields the complete graph with weights S_ij = d_i d_j / sum_k d_k.
/// `star` must be a star centered at `root`; the returned graph keeps the
/// leaf ids of `star` (root becomes isolated).
[[nodiscard]] Graph star_schur_complement(const Graph& star, vidx root);

/// Dense Schur complement of the Laplacian of g with respect to eliminating
/// the vertex set `eliminate` (kept vertices stay in their relative order).
/// The principal block on `eliminate` must be nonsingular (true when every
/// component of g touches a kept vertex).
[[nodiscard]] DenseMatrix schur_complement_dense(
    const Graph& g, std::span<const vidx> eliminate,
    std::vector<vidx>* kept_out = nullptr);

/// The Steiner Schur complement B = D - V (Q + D_Q)^{-1} V' of S_P with
/// respect to its Steiner (root) vertices, computed densely via the
/// algebraic identity of Theorem 4.1's proof. For analysis on small graphs.
[[nodiscard]] DenseMatrix steiner_schur_complement_dense(
    const Graph& a, const Decomposition& p);

}  // namespace hicond
