// Shared-memory parallel primitives built on OpenMP.
//
// The algorithms in this library are described in the paper in the PRAM
// model (linear work, O(log n) depth). We realize them on shared memory with
// OpenMP; every primitive here is deterministic: results are identical for
// any thread count.
#pragma once

#include <cstddef>
#include <vector>

#include "hicond/util/common.hpp"

namespace hicond {

/// Number of OpenMP threads the library will use.
[[nodiscard]] int num_threads() noexcept;

/// Exclusive prefix sum of `values` (in place): out[i] = sum of values[0..i).
/// Returns the total sum. Work O(n), depth O(n/p + p).
eidx exclusive_scan_inplace(std::vector<eidx>& values);

/// Parallel for over [0, n) with a static schedule.
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn) {
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    fn(i);
  }
}

/// Parallel sum-reduction of fn(i) over [0, n).
template <typename Fn>
double parallel_sum(std::size_t n, Fn&& fn) {
  double total = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : total)
  for (std::size_t i = 0; i < n; ++i) {
    total += fn(i);
  }
  return total;
}

/// Parallel max-reduction of fn(i) over [0, n). Returns `init` when n == 0.
template <typename Fn>
double parallel_max(std::size_t n, double init, Fn&& fn) {
  double best = init;
#pragma omp parallel for schedule(static) reduction(max : best)
  for (std::size_t i = 0; i < n; ++i) {
    const double v = fn(i);
    if (v > best) best = v;
  }
  return best;
}

}  // namespace hicond
