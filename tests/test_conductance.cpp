#include "hicond/graph/conductance.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "hicond/graph/closure.hpp"
#include "hicond/graph/generators.hpp"

namespace hicond {
namespace {

TEST(CutSparsity, SingleVertexCut) {
  const Graph g = gen::path(3);  // unit weights
  std::vector<char> s{1, 0, 0};
  EXPECT_DOUBLE_EQ(cut_sparsity(g, s), 1.0);  // cap 1 / vol 1
}

TEST(CutSparsity, MiddleCutOfPath) {
  const Graph g = gen::path(4);
  std::vector<char> s{1, 1, 0, 0};
  // cap = 1, vol each side = 3.
  EXPECT_DOUBLE_EQ(cut_sparsity(g, s), 1.0 / 3.0);
}

TEST(CutSparsity, DegenerateCutIsInfinite) {
  const Graph g = gen::path(3);
  std::vector<char> all{1, 1, 1};
  EXPECT_EQ(cut_sparsity(g, all), kInfiniteConductance);
  std::vector<char> none{0, 0, 0};
  EXPECT_EQ(cut_sparsity(g, none), kInfiniteConductance);
}

TEST(ConductanceExact, CompleteGraphIsWellConnected) {
  // K_4 unit: conductance = min over cuts; balanced cut: cap 4 / vol 6 = 2/3.
  const Graph g = gen::complete(4);
  EXPECT_NEAR(conductance_exact(g), 2.0 / 3.0, 1e-12);
}

TEST(ConductanceExact, StarIsOne) {
  const Graph g = gen::star(7, gen::WeightSpec::uniform(0.5, 4.0), 3);
  EXPECT_NEAR(conductance_exact(g), 1.0, 1e-12);
}

TEST(ConductanceExact, UnitPathMiddleCut) {
  const Graph g = gen::path(6);
  // Balanced middle cut: cap 1, each side vol 5.
  EXPECT_NEAR(conductance_exact(g), 1.0 / 5.0, 1e-12);
}

TEST(ConductanceExact, DisconnectedIsZero) {
  std::vector<WeightedEdge> edges{{0, 1, 1.0}, {2, 3, 1.0}};
  const Graph g(4, edges);
  EXPECT_DOUBLE_EQ(conductance_exact(g), 0.0);
}

TEST(ConductanceExact, TinyGraphsAreInfinite) {
  EXPECT_EQ(conductance_exact(Graph(1)), kInfiniteConductance);
  EXPECT_EQ(conductance_exact(Graph(0)), kInfiniteConductance);
}

TEST(ConductanceExact, TwoVertexGraphIsOne) {
  std::vector<WeightedEdge> edges{{0, 1, 5.0}};
  EXPECT_DOUBLE_EQ(conductance_exact(Graph(2, edges)), 1.0);
}

TEST(ConductanceExact, WeightedBottleneck) {
  // Two unit triangles joined by a light edge: conductance set by the
  // bottleneck cut, cap = eps over one triangle's volume 6 + eps.
  const double eps = 0.01;
  std::vector<WeightedEdge> edges{{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0},
                                  {3, 4, 1.0}, {4, 5, 1.0}, {3, 5, 1.0},
                                  {2, 3, eps}};
  const Graph g(6, edges);
  EXPECT_NEAR(conductance_exact(g), eps / (6.0 + eps), 1e-12);
}

TEST(ConductanceExact, RejectsTooLarge) {
  const Graph g = gen::grid2d(5, 5);
  EXPECT_THROW((void)conductance_exact(g), invalid_argument_error);
}

TEST(ConductanceSweep, IsUpperBoundOfExact) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Graph g = gen::random_planar_triangulation(
        14, gen::WeightSpec::uniform(0.2, 5.0), seed);
    const double exact = conductance_exact(g);
    // Sweep by vertex id (arbitrary order): still an upper bound.
    std::vector<double> score(14);
    for (std::size_t i = 0; i < score.size(); ++i) {
      score[i] = static_cast<double>(i);
    }
    EXPECT_GE(conductance_sweep(g, score) + 1e-12, exact) << "seed " << seed;
  }
}

TEST(ConductanceSpectralSweep, NearExactOnDumbbell) {
  const double eps = 0.05;
  std::vector<WeightedEdge> edges{{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0},
                                  {3, 4, 1.0}, {4, 5, 1.0}, {3, 5, 1.0},
                                  {2, 3, eps}};
  const Graph g(6, edges);
  const double exact = conductance_exact(g);
  const double sweep = conductance_spectral_upper(g);
  EXPECT_GE(sweep + 1e-12, exact);
  EXPECT_NEAR(sweep, exact, 1e-9);  // the Fiedler sweep finds this cut
}

TEST(CheegerBound, SandwichesExactConductance) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Graph g =
        gen::grid2d(4, 4, gen::WeightSpec::uniform(0.5, 2.0), seed);
    const double exact = conductance_exact(g);
    const double lower = cheeger_lower_bound(g);
    const double upper = conductance_spectral_upper(g);
    EXPECT_LE(lower, exact + 1e-12) << "seed " << seed;
    EXPECT_GE(upper + 1e-12, exact) << "seed " << seed;
  }
}

TEST(Lambda2, PathAsymptoticallySmall) {
  const double l2_short = lambda2_normalized(gen::path(8));
  const double l2_long = lambda2_normalized(gen::path(64));
  EXPECT_GT(l2_short, l2_long);
  EXPECT_GT(l2_long, 0.0);
}

TEST(Lambda2, CompleteGraphValue) {
  // Normalized Laplacian of K_n has eigenvalue n/(n-1) with multiplicity n-1.
  const Graph g = gen::complete(6);
  EXPECT_NEAR(lambda2_normalized(g), 6.0 / 5.0, 1e-9);
}

TEST(Lambda2, LargeGraphEstimateClose) {
  // Compare the power-iteration path (n > 600) against the dense value on a
  // torus where both are computable: build 26x26 = 676 vertices.
  const Graph g = gen::torus2d(26, 26);
  const double approx = lambda2_normalized(g);  // uses power iteration
  // Dense reference on the same graph via a forced small computation is not
  // possible here; check against the known 2D torus value
  // lambda_2 = (2 - 2 cos(2 pi / n)) / 4 per dimension on unit weights.
  const double expected = (2.0 - 2.0 * std::cos(2.0 * std::numbers::pi / 26)) / 4.0;
  EXPECT_NEAR(approx, expected, expected * 0.2);
}

TEST(ConductanceBounds, ExactForSmall) {
  const Graph g = gen::complete(5);
  const auto b = conductance_bounds(g);
  EXPECT_TRUE(b.exact);
  EXPECT_DOUBLE_EQ(b.lower, b.upper);
}

TEST(ConductanceBounds, BracketsForLarge) {
  const Graph g = gen::grid2d(10, 10, gen::WeightSpec::uniform(1.0, 2.0), 4);
  const auto b = conductance_bounds(g, 20);
  EXPECT_FALSE(b.exact);
  EXPECT_LE(b.lower, b.upper);
  EXPECT_GT(b.lower, 0.0);
}

TEST(ConductanceBounds, DisconnectedIsZero) {
  std::vector<WeightedEdge> edges{{0, 1, 1.0}, {2, 3, 1.0}};
  const Graph g(4, edges);
  const auto b = conductance_bounds(g);
  EXPECT_TRUE(b.exact);
  EXPECT_DOUBLE_EQ(b.lower, 0.0);
}

// Closure conductance values used throughout the paper's case analyses.
TEST(ClosureConductance, PairWithOneSidedBoundaryIsOne) {
  // Cluster {b, c} of path a-b-c: closure has conductance 1.
  const Graph g = gen::path(3);
  const std::vector<vidx> cluster{1, 2};
  const ClosureGraph c = closure_graph(g, cluster);
  EXPECT_NEAR(conductance_exact(c.graph), 1.0, 1e-12);
}

TEST(ClosureConductance, PairWithTwoSidedBoundary) {
  // Path a-b-c-d, cluster {b, c}: closure conductance = w/(w + 2 min(a,b)).
  std::vector<WeightedEdge> edges{{0, 1, 2.0}, {1, 2, 3.0}, {2, 3, 1.0}};
  const Graph g(4, edges);
  const ClosureGraph c = closure_graph(g, std::vector<vidx>{1, 2});
  EXPECT_NEAR(conductance_exact(c.graph), 3.0 / (3.0 + 2.0 * 1.0), 1e-12);
}

TEST(ClosureConductance, SpiderWithEqualWeights) {
  // Critical-cluster shape: center with two 2-paths, unit weights. The cut
  // isolating one path has sparsity 1/3 (see Theorem 2.1 discussion).
  const Graph g = gen::spider(2, 2);
  const ClosureGraph c =
      closure_graph(g, std::vector<vidx>{0, 1, 3});  // center + inner legs
  EXPECT_NEAR(conductance_exact(c.graph), 1.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace hicond
