// Parallel dense vector kernels used by the iterative solvers.
#pragma once

#include <span>
#include <vector>

#include "hicond/util/common.hpp"

namespace hicond::la {

[[nodiscard]] double dot(std::span<const double> x, std::span<const double> y);

[[nodiscard]] double norm2(std::span<const double> x);

/// y += alpha * x.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// y = x + beta * y (the PCG direction update).
void xpby(std::span<const double> x, double beta, std::span<double> y);

void scale(double alpha, std::span<double> x);

void copy(std::span<const double> src, std::span<double> dst);

void fill(std::span<double> x, double value);

/// Subtract the mean: projects onto the complement of the constant vector.
void remove_mean(std::span<double> x);

/// Subtract the weighted mean so that sum_i w_i x_i = 0.
void remove_weighted_mean(std::span<double> x, std::span<const double> w);

/// Max |x_i - y_i|.
[[nodiscard]] double max_abs_diff(std::span<const double> x,
                                  std::span<const double> y);

}  // namespace hicond::la
