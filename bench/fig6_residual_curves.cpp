// FIG6 -- reproduction of Figure 6: "Steiner vs subgraph preconditioners".
//
// The paper solves a weighted 3D grid with a Steiner preconditioner and a
// subgraph preconditioner designed to achieve roughly the same reduction
// factor (around 4) in the size of the graph/system, and plots the residual
// norm ||r_i||_2 against the PCG iteration number. The Steiner curve drops
// several times faster.
//
// We regenerate the same series: a synthetic OCT-like weighted 3D grid
// (large global + local weight variation, see DESIGN.md substitutions), a
// Section 3.1 Steiner preconditioner with cluster cap 4 (quotient size
// ~ n/3.6), and a maximum-weight-spanning-tree + Vaidya subgraph
// preconditioner whose partial-Cholesky core is matched to (in fact, left
// about 2x LARGER than) the Steiner quotient.
//
//   ./fig6_residual_curves [side] [field_orders] [max_iters]
#include <cstdio>
#include <cstdlib>

#include "hicond/graph/generators.hpp"
#include "hicond/la/cg.hpp"
#include "hicond/la/vector_ops.hpp"
#include "hicond/partition/fixed_degree.hpp"
#include "hicond/precond/steiner.hpp"
#include "hicond/precond/subgraph.hpp"
#include "hicond/util/rng.hpp"

namespace {

using namespace hicond;

std::vector<double> residual_curve(const Graph& g, const LinearOperator& m,
                                   int max_iters) {
  const vidx n = g.num_vertices();
  Rng rng(11);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  la::remove_mean(b);
  auto a = [&g](std::span<const double> x, std::span<double> y) {
    g.laplacian_apply(x, y);
  };
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  const SolveStats stats =
      pcg_solve(a, m, b, x,
                {.max_iterations = max_iters, .rel_tolerance = 1e-14,
                 .record_history = true, .project_constant = true});
  std::vector<double> curve = stats.residual_history;
  // Normalize like the figure: ||r_0|| = 1.
  if (!curve.empty() && curve.front() > 0.0) {
    const double r0 = curve.front();
    for (double& v : curve) v /= r0;
  }
  return curve;
}

}  // namespace

int main(int argc, char** argv) {
  const vidx side = argc > 1 ? static_cast<vidx>(std::atoi(argv[1])) : 16;
  const double orders = argc > 2 ? std::atof(argv[2]) : 3.0;
  const int max_iters = argc > 3 ? std::atoi(argv[3]) : 40;

  const Graph g = gen::oct_volume(
      side, side, side, {.field_orders = orders, .speckle_sigma = 0.5}, 13);
  const vidx n = g.num_vertices();

  const FixedDegreeResult fd =
      fixed_degree_decomposition(g, {.max_cluster_size = 4});
  const SteinerPreconditioner steiner =
      SteinerPreconditioner::build(g, fd.decomposition);

  SubgraphPrecondOptions sub_opt;
  sub_opt.target_subtrees = std::max<vidx>(2, n / 32);
  const SubgraphPreconditioner subgraph =
      SubgraphPreconditioner::build(g, sub_opt);

  std::printf("# FIG6: PCG residual curves, weighted 3D grid (%d^3 = %d "
              "vertices, OCT-like weights over %.0f orders)\n",
              side, n, orders);
  std::printf("# steiner reduction: n/%d quotient vertices = %.2f\n",
              steiner.num_steiner_vertices(),
              static_cast<double>(n) / steiner.num_steiner_vertices());
  std::printf("# subgraph reduction: n/%d core vertices = %.2f "
              "(comparison favours the subgraph side)\n",
              subgraph.core_size(),
              static_cast<double>(n) / subgraph.core_size());
  const auto s_curve = residual_curve(g, steiner.as_operator(), max_iters);
  const auto g_curve = residual_curve(g, subgraph.as_operator(), max_iters);

  std::printf("#\n# iteration  steiner_residual  subgraph_residual\n");
  const std::size_t rows =
      std::max(s_curve.size(), g_curve.size());
  for (std::size_t i = 0; i < rows; ++i) {
    std::printf("%9zu  %16.6e  %17.6e\n", i,
                i < s_curve.size() ? s_curve[i] : 0.0,
                i < g_curve.size() ? g_curve[i] : 0.0);
  }
  // Headline numbers: iterations to reach 1e-8 relative residual.
  auto iters_to = [](const std::vector<double>& curve, double tol) -> long {
    for (std::size_t i = 0; i < curve.size(); ++i) {
      if (curve[i] <= tol) return static_cast<long>(i);
    }
    return -1;
  };
  std::printf("#\n# iterations to 1e-8: steiner=%ld subgraph=%ld "
              "(paper: steiner converges several times faster)\n",
              iters_to(s_curve, 1e-8), iters_to(g_curve, 1e-8));
  return 0;
}
