file(REMOVE_RECURSE
  "CMakeFiles/test_conductance.dir/test_conductance.cpp.o"
  "CMakeFiles/test_conductance.dir/test_conductance.cpp.o.d"
  "test_conductance"
  "test_conductance.pdb"
  "test_conductance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_conductance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
