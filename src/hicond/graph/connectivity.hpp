// Connectivity utilities: components, forest/tree predicates, BFS.
#pragma once

#include <vector>

#include "hicond/graph/graph.hpp"

namespace hicond {

/// Component id (0..k-1) for each vertex, by BFS order of discovery.
[[nodiscard]] std::vector<vidx> connected_components(const Graph& g);

/// Number of connected components.
[[nodiscard]] vidx num_components(const Graph& g);

[[nodiscard]] bool is_connected(const Graph& g);

/// True when g has no cycles (m == n - #components).
[[nodiscard]] bool is_forest(const Graph& g);

/// True when g is connected and acyclic.
[[nodiscard]] bool is_tree(const Graph& g);

/// BFS distances (hop counts) from `source`; -1 for unreachable vertices.
[[nodiscard]] std::vector<vidx> bfs_distances(const Graph& g, vidx source);

}  // namespace hicond
